//! The paper's distributed optimal-semilightpath algorithm (Theorem 3).
//!
//! The auxiliary graph `G_{s,t}` is *embedded* into the physical network:
//! each physical node `v` hosts its own conversion gadget
//! (`X_v`, `Y_v`, `E_v`) as local state, gadget-internal relaxations are
//! free local computation, and only the `E_org` traversal edges — which
//! coincide with physical links — cost messages. A Chandy–Misra-style
//! relaxation wave from the source with Dijkstra–Scholten termination
//! detection computes, at every node and for every receivable wavelength,
//! the optimal semilightpath cost; the claimed complexities are `O(km)`
//! messages and `O(kn)` time, which experiment E4 measures.
//!
//! One relaxation message carries `(link, wavelength, distance)` and
//! travels the physical link it relaxes; acknowledgements travel the
//! reverse control channel.

use crate::sim::{Context, Process, ProcessId, SimError, SimStats, SimTime, Simulator};
use std::rc::Rc;
use wdm_core::{Cost, Hop, Semilightpath, Wavelength, WdmError, WdmNetwork};
use wdm_graph::{LinkId, NodeId};

/// Messages of the protocol.
#[derive(Debug, Clone)]
enum Msg {
    /// "Your `X_v` state for `wavelength` can be reached with total cost
    /// `dist` via `link`" (link weight already included).
    Relax {
        link: LinkId,
        wavelength: Wavelength,
        dist: Cost,
    },
    /// Dijkstra–Scholten acknowledgement.
    Ack,
}

/// How a `Y_v(λ)` state was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum YParent {
    /// Super-source tap (only at the source node).
    Tap,
    /// Gadget edge from `X_v(λ_in)`.
    From(Wavelength),
}

/// Per-node protocol state: the embedded gadget.
#[derive(Debug)]
struct NodeProcess {
    id: ProcessId,
    is_source: bool,
    network: Rc<WdmNetwork>,
    /// `x_dist[λ]` — best known cost reaching `X_v(λ)`.
    x_dist: Vec<Cost>,
    /// `x_parent[λ]` — `(physical predecessor, link)` achieving it.
    x_parent: Vec<Option<(ProcessId, LinkId)>>,
    /// `y_dist[λ']` — best known cost reaching `Y_v(λ')`.
    y_dist: Vec<Cost>,
    y_parent: Vec<Option<YParent>>,
    // Dijkstra–Scholten bookkeeping.
    engaged: bool,
    ds_parent: Option<ProcessId>,
    deficit: u64,
    terminated: bool,
    sent_data: u64,
    sent_acks: u64,
}

impl NodeProcess {
    /// Gadget-local relaxation after `X_v(λ)` improved to `d`, followed by
    /// flooding improved `Y_v` states over outgoing physical links.
    fn relax_gadget_from_x(&mut self, arrived: Wavelength, d: Cost, ctx: &mut Context<Msg>) {
        let me = NodeId::new(self.id);
        let network = Rc::clone(&self.network);
        for lambda_out in network.lambda_out(me).iter() {
            let conv = network.conversion_cost(me, arrived, lambda_out);
            let cand = d + conv;
            if cand < self.y_dist[lambda_out.index()] {
                self.y_dist[lambda_out.index()] = cand;
                self.y_parent[lambda_out.index()] = Some(YParent::From(arrived));
                self.flood_y(lambda_out, cand, ctx);
            }
        }
    }

    /// Sends relaxations for `Y_v(λ')` over every outgoing link carrying
    /// `λ'`.
    fn flood_y(&mut self, lambda: Wavelength, d: Cost, ctx: &mut Context<Msg>) {
        let me = NodeId::new(self.id);
        let network = Rc::clone(&self.network);
        let g = network.graph();
        for &e in g.out_links(me) {
            let w = network.link_cost(e, lambda);
            if w.is_finite() {
                ctx.send(
                    g.link(e).head().index(),
                    Msg::Relax {
                        link: e,
                        wavelength: lambda,
                        dist: d + w,
                    },
                );
                self.deficit += 1;
                self.sent_data += 1;
            }
        }
    }

    fn maybe_release(&mut self, ctx: &mut Context<Msg>) {
        if self.deficit == 0 {
            if self.is_source {
                self.terminated = true;
            } else if self.engaged {
                let Some(parent) = self.ds_parent.take() else {
                    unreachable!("engaged ⇒ parent")
                };
                ctx.send(parent, Msg::Ack);
                self.sent_acks += 1;
                self.engaged = false;
            }
        }
    }
}

impl Process for NodeProcess {
    type Message = Msg;

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if self.is_source {
            // The super-source s' taps every Y_s state at cost zero.
            let me = NodeId::new(self.id);
            let network = Rc::clone(&self.network);
            for lambda in network.lambda_out(me).iter() {
                self.y_dist[lambda.index()] = Cost::ZERO;
                self.y_parent[lambda.index()] = Some(YParent::Tap);
                self.flood_y(lambda, Cost::ZERO, ctx);
            }
            self.maybe_release(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, message: Msg, ctx: &mut Context<Msg>) {
        match message {
            Msg::Relax {
                link,
                wavelength,
                dist,
            } => {
                let engagement = !self.is_source && !self.engaged;
                if engagement {
                    self.engaged = true;
                    self.ds_parent = Some(from);
                }
                if dist < self.x_dist[wavelength.index()] {
                    self.x_dist[wavelength.index()] = dist;
                    self.x_parent[wavelength.index()] = Some((from, link));
                    self.relax_gadget_from_x(wavelength, dist, ctx);
                }
                if engagement {
                    self.maybe_release(ctx);
                } else {
                    ctx.send(from, Msg::Ack);
                    self.sent_acks += 1;
                }
            }
            Msg::Ack => {
                self.deficit -= 1;
                self.maybe_release(ctx);
            }
        }
    }
}

/// Result of a distributed semilightpath-tree computation from one source.
#[derive(Debug, Clone)]
pub struct DistributedTreeOutcome {
    /// The source node.
    pub source: NodeId,
    /// `costs[v]` — optimal semilightpath cost from the source to `v`
    /// (zero at the source, [`Cost::INFINITY`] when unreachable).
    pub costs: Vec<Cost>,
    /// Relaxation messages sent (the paper bounds these by `O(km)`).
    pub data_messages: u64,
    /// Dijkstra–Scholten acknowledgements sent.
    pub ack_messages: u64,
    /// Simulator counters; `stats.makespan` is the paper's `O(kn)` time.
    pub stats: SimStats,
    /// Whether the source observed termination.
    pub root_detected_termination: bool,
    paths: PathTable,
}

/// Recorded parent pointers for path extraction.
#[derive(Debug, Clone)]
struct PathTable {
    k: usize,
    x_dist: Vec<Vec<Cost>>,
    x_parent: Vec<Vec<Option<(ProcessId, LinkId)>>>,
    y_parent: Vec<Vec<Option<YParent>>>,
}

impl DistributedTreeOutcome {
    /// Reconstructs the optimal semilightpath to `t` by walking the
    /// recorded parent pointers backwards (an `O(path length)` trace,
    /// the final phase of the Theorem-3 protocol).
    ///
    /// Returns the empty path for the source itself and `None` when `t`
    /// is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn path_to(&self, t: NodeId) -> Option<Semilightpath> {
        if t == self.source {
            return Some(Semilightpath::new(Vec::new(), Cost::ZERO));
        }
        let table = &self.paths;
        let v = t.index();
        // Best arrival wavelength at t.
        let (mut lambda, mut best) = (None, Cost::INFINITY);
        for l in 0..table.k {
            if table.x_dist[v][l] < best {
                best = table.x_dist[v][l];
                lambda = Some(l);
            }
        }
        let mut lambda = Wavelength::new(lambda?);
        let mut node = v;
        let mut hops = Vec::new();
        loop {
            let Some((pred, link)) = table.x_parent[node][lambda.index()] else {
                unreachable!("finite dist ⇒ parent")
            };
            hops.push(Hop {
                link,
                wavelength: lambda,
            });
            let Some(y) = table.y_parent[pred][lambda.index()] else {
                unreachable!("y state on path is set")
            };
            match y {
                YParent::Tap => break,
                YParent::From(arrived) => {
                    lambda = arrived;
                    node = pred;
                }
            }
        }
        hops.reverse();
        Some(Semilightpath::new(hops, best))
    }

    /// Runs the trace phase *as a distributed protocol*: the destination
    /// walks the parent pointers backwards with one message per physical
    /// hop (the reverse control channels), measuring the `O(path length)`
    /// post-processing cost of Theorem 3.
    ///
    /// The traced path equals [`DistributedTreeOutcome::path_to`]'s
    /// answer; only the accounting differs.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn trace_distributed(
        &self,
        network: &WdmNetwork,
        t: NodeId,
    ) -> Result<DistributedTraceOutcome, SimError> {
        let n = network.node_count();
        assert!(t.index() < n, "target out of range");
        if t == self.source || self.costs[t.index()].is_infinite() {
            return Ok(DistributedTraceOutcome {
                path: if t == self.source {
                    Some(Semilightpath::new(Vec::new(), Cost::ZERO))
                } else {
                    None
                },
                trace_messages: 0,
                makespan: 0,
            });
        }
        // Best arrival wavelength at t, as the routing phase computed it.
        let table = &self.paths;
        let mut best: Option<(Wavelength, Cost)> = None;
        for l in 0..table.k {
            let d = table.x_dist[t.index()][l];
            if d.is_finite() && best.map(|(_, b)| d < b).unwrap_or(true) {
                best = Some((Wavelength::new(l), d));
            }
        }
        let Some((start_wavelength, total)) = best else {
            unreachable!("finite cost ⇒ arrival state")
        };

        let g = network.graph();
        let mut topology: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
        for v in g.nodes() {
            let mut adj: Vec<ProcessId> = g
                .out_links(v)
                .iter()
                .map(|&e| g.link(e).head().index())
                .chain(g.in_links(v).iter().map(|&e| g.link(e).tail().index()))
                .collect();
            adj.sort_unstable();
            adj.dedup();
            topology[v.index()] = adj;
        }
        let processes: Vec<TraceProcess> = (0..n)
            .map(|id| TraceProcess {
                id,
                is_target: id == t.index(),
                x_parent: table.x_parent[id].clone(),
                y_parent: table.y_parent[id].clone(),
                start_wavelength: (id == t.index()).then_some(start_wavelength),
                result: None,
            })
            .collect();
        let mut sim = Simulator::new(processes, topology);
        let stats = sim.run()?;
        let Some(hops) = sim.process(self.source.index()).result.clone() else {
            unreachable!("trace terminates at the source")
        };
        Ok(DistributedTraceOutcome {
            path: Some(Semilightpath::new(hops, total)),
            trace_messages: stats.messages,
            makespan: stats.makespan,
        })
    }
}

/// The trace phase as a message-passing protocol: after the relaxation
/// phase terminates, the destination walks the recorded parent pointers
/// *with messages*, each hop crossing one physical (reverse) channel and
/// accumulating the path. This measures the `O(path length)` cost of the
/// final phase of Theorem 3 instead of asserting it.
#[derive(Debug)]
struct TraceProcess {
    id: ProcessId,
    is_target: bool,
    /// Snapshot of the routing phase's per-wavelength parent pointers.
    x_parent: Vec<Option<(ProcessId, LinkId)>>,
    y_parent: Vec<Option<YParent>>,
    /// Best arrival wavelength at the target (set only on the target).
    start_wavelength: Option<Wavelength>,
    /// Filled in at the source when the trace completes.
    result: Option<Vec<Hop>>,
}

#[derive(Debug, Clone)]
struct TraceMsg {
    /// Hops accumulated so far (destination-first).
    hops: Vec<Hop>,
    /// The wavelength of the `Y` state to continue from at the receiver.
    wavelength: Wavelength,
}

impl TraceProcess {
    /// Continues the backward walk from this node's `Y(wavelength)`
    /// state: either we are the origin (tap) and the trace is complete,
    /// or we hop one more physical channel backwards.
    fn step(&mut self, mut hops: Vec<Hop>, wavelength: Wavelength, ctx: &mut Context<TraceMsg>) {
        let Some(parent) = self.y_parent[wavelength.index()] else {
            unreachable!("traced y state was reached")
        };
        match parent {
            YParent::Tap => {
                hops.reverse();
                self.result = Some(hops);
            }
            YParent::From(arrived) => {
                let Some((pred, link)) = self.x_parent[arrived.index()] else {
                    unreachable!("reached x state has a parent")
                };
                hops.push(Hop {
                    link,
                    wavelength: arrived,
                });
                ctx.send(
                    pred,
                    TraceMsg {
                        hops,
                        wavelength: arrived,
                    },
                );
            }
        }
    }
}

impl Process for TraceProcess {
    type Message = TraceMsg;

    fn on_start(&mut self, ctx: &mut Context<TraceMsg>) {
        if self.is_target {
            if let Some(lambda) = self.start_wavelength {
                let Some((pred, link)) = self.x_parent[lambda.index()] else {
                    unreachable!("finite dist ⇒ parent")
                };
                let hops = vec![Hop {
                    link,
                    wavelength: lambda,
                }];
                ctx.send(
                    pred,
                    TraceMsg {
                        hops,
                        wavelength: lambda,
                    },
                );
            }
        }
        let _ = self.id;
    }

    fn on_message(&mut self, _from: ProcessId, msg: TraceMsg, ctx: &mut Context<TraceMsg>) {
        self.step(msg.hops, msg.wavelength, ctx);
    }
}

/// Outcome of the distributed trace phase.
#[derive(Debug, Clone)]
pub struct DistributedTraceOutcome {
    /// The traced path (validated shape; `None` when `t` unreachable).
    pub path: Option<Semilightpath>,
    /// Messages spent tracing (= path length in physical hops, the
    /// Theorem-3 post-processing cost).
    pub trace_messages: u64,
    /// Trace makespan in latency units.
    pub makespan: SimTime,
}

/// Runs the Theorem-3 protocol: a distributed shortest-semilightpath tree
/// rooted at `source`.
///
/// # Errors
///
/// * [`WdmError::NodeOutOfRange`] (wrapped) if `source` is invalid —
///   returned as [`SimError`]-free `Err` via panic-free validation;
/// * [`SimError`] if the simulation exceeds its budget.
///
/// # Examples
///
/// ```
/// use wdm_core::{ConversionPolicy, Cost, WdmNetwork};
/// use wdm_distributed::semilightpath::distributed_tree;
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 10)])
///     .link_wavelengths(1, [(1, 20)])
///     .conversion(1, ConversionPolicy::Uniform(Cost::new(5)))
///     .build()
///     .expect("valid");
/// let tree = distributed_tree(&net, 0.into()).expect("terminates");
/// assert_eq!(tree.costs[2], Cost::new(35));
/// let path = tree.path_to(2.into()).expect("reachable");
/// path.validate(&net).expect("valid");
/// ```
pub fn distributed_tree(
    network: &WdmNetwork,
    source: NodeId,
) -> Result<DistributedTreeOutcome, SimError> {
    distributed_tree_with_latencies(network, source, |_, _| 1)
}

/// Like [`distributed_tree`] but with heterogeneous channel latencies:
/// `latency_of(from, to)` gives the delivery delay (≥ 1) of the control
/// channel from physical node `from` to `to`.
///
/// The computed *costs and paths* are independent of the latency
/// assignment — the protocol is timing-insensitive; only message counts
/// and the makespan change. The property test
/// `tests/latency_independence.rs` checks this.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `source` is out of range or any latency is zero.
pub fn distributed_tree_with_latencies(
    network: &WdmNetwork,
    source: NodeId,
    latency_of: impl Fn(ProcessId, ProcessId) -> crate::sim::SimTime,
) -> Result<DistributedTreeOutcome, SimError> {
    assert!(source.index() < network.node_count(), "source out of range");
    let n = network.node_count();
    let k = network.k();
    let shared = Rc::new(network.clone());
    let g = network.graph();

    let mut processes = Vec::with_capacity(n);
    let mut topology: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
    for v in g.nodes() {
        let mut adj: Vec<ProcessId> = g
            .out_links(v)
            .iter()
            .map(|&e| g.link(e).head().index())
            .chain(g.in_links(v).iter().map(|&e| g.link(e).tail().index()))
            .collect();
        adj.sort_unstable();
        adj.dedup();
        topology[v.index()] = adj;
        processes.push(NodeProcess {
            id: v.index(),
            is_source: v == source,
            network: Rc::clone(&shared),
            x_dist: vec![Cost::INFINITY; k],
            x_parent: vec![None; k],
            y_dist: vec![Cost::INFINITY; k],
            y_parent: vec![None; k],
            engaged: false,
            ds_parent: None,
            deficit: 0,
            terminated: false,
            sent_data: 0,
            sent_acks: 0,
        });
    }

    let latencies: Vec<Vec<(ProcessId, crate::sim::SimTime)>> = topology
        .iter()
        .enumerate()
        .map(|(from, adj)| adj.iter().map(|&to| (to, latency_of(from, to))).collect())
        .collect();
    let mut sim = Simulator::new(processes, topology).with_latencies(latencies);
    let stats = sim.run()?;

    let mut costs = Vec::with_capacity(n);
    let mut data_messages = 0;
    let mut ack_messages = 0;
    let mut root_detected_termination = false;
    let mut x_dist = Vec::with_capacity(n);
    let mut x_parent = Vec::with_capacity(n);
    let mut y_parent = Vec::with_capacity(n);
    for id in 0..n {
        let p = sim.process(id);
        let best = if id == source.index() {
            Cost::ZERO
        } else {
            p.x_dist.iter().copied().min().unwrap_or(Cost::INFINITY)
        };
        costs.push(best);
        data_messages += p.sent_data;
        ack_messages += p.sent_acks;
        if p.is_source {
            root_detected_termination = p.terminated;
        }
        debug_assert_eq!(p.deficit, 0, "node {id} has unacked messages");
        x_dist.push(p.x_dist.clone());
        x_parent.push(p.x_parent.clone());
        y_parent.push(p.y_parent.clone());
    }

    Ok(DistributedTreeOutcome {
        source,
        costs,
        data_messages,
        ack_messages,
        stats,
        root_detected_termination,
        paths: PathTable {
            k,
            x_dist,
            x_parent,
            y_parent,
        },
    })
}

/// Result of one distributed point-to-point routing query.
#[derive(Debug, Clone)]
pub struct DistributedRouteOutcome {
    /// The optimal semilightpath, or `None` when unreachable.
    pub path: Option<Semilightpath>,
    /// Its cost ([`Cost::INFINITY`] when unreachable).
    pub cost: Cost,
    /// Relaxation messages sent.
    pub data_messages: u64,
    /// Acknowledgements sent.
    pub ack_messages: u64,
    /// Messages spent tracing the path back (one per physical hop).
    pub trace_messages: u64,
    /// Protocol makespan in latency units (routing phase).
    pub makespan: SimTime,
    /// Whether the source observed termination.
    pub terminated: bool,
}

/// Runs the Theorem-3 protocol for one `s → t` query.
///
/// # Errors
///
/// [`WdmError::NodeOutOfRange`] if `s` or `t` is invalid; otherwise
/// propagates simulator errors as a panic-free [`SimError`] mapped into
/// [`WdmError`] is *not* done — the two error domains are kept distinct by
/// returning `Result<_, RouteSimError>`.
///
/// # Examples
///
/// ```
/// use wdm_distributed::semilightpath::route_distributed;
/// use wdm_core::Cost;
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 3)])
///     .build()
///     .expect("valid");
/// let out = route_distributed(&net, 0.into(), 1.into()).expect("terminates");
/// assert_eq!(out.cost, Cost::new(3));
/// ```
pub fn route_distributed(
    network: &WdmNetwork,
    s: NodeId,
    t: NodeId,
) -> Result<DistributedRouteOutcome, RouteSimError> {
    let n = network.node_count();
    for v in [s, t] {
        if v.index() >= n {
            return Err(RouteSimError::Wdm(WdmError::NodeOutOfRange { node: v, n }));
        }
    }
    if s == t {
        return Ok(DistributedRouteOutcome {
            path: Some(Semilightpath::new(Vec::new(), Cost::ZERO)),
            cost: Cost::ZERO,
            data_messages: 0,
            ack_messages: 0,
            trace_messages: 0,
            makespan: 0,
            terminated: true,
        });
    }
    let tree = distributed_tree(network, s).map_err(RouteSimError::Sim)?;
    let trace = tree
        .trace_distributed(network, t)
        .map_err(RouteSimError::Sim)?;
    Ok(DistributedRouteOutcome {
        cost: tree.costs[t.index()],
        path: trace.path,
        data_messages: tree.data_messages,
        ack_messages: tree.ack_messages,
        trace_messages: trace.trace_messages,
        makespan: tree.stats.makespan,
        terminated: tree.root_detected_termination,
    })
}

/// Error domain of [`route_distributed`]: query validation or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteSimError {
    /// Invalid query (bad node ids).
    Wdm(WdmError),
    /// Simulation failure (event budget, illegal send).
    Sim(SimError),
}

impl std::fmt::Display for RouteSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteSimError::Wdm(e) => write!(f, "query error: {e}"),
            RouteSimError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RouteSimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdm_core::instance::{random_network, InstanceConfig};
    use wdm_core::LiangShenRouter;
    use wdm_graph::{topology, DiGraph};

    #[test]
    fn agrees_with_centralized_on_random_instances() {
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let net = random_network(topology::nsfnet(), &InstanceConfig::standard(4), &mut rng)
                .expect("valid");
            let router = LiangShenRouter::new();
            let tree = distributed_tree(&net, 0.into()).expect("terminates");
            assert!(tree.root_detected_termination, "seed {seed}");
            for t in 0..net.node_count() {
                let t = NodeId::new(t);
                let central = router.route(&net, 0.into(), t).expect("ok").cost();
                let distributed = if t == NodeId::new(0) {
                    Cost::ZERO
                } else {
                    tree.costs[t.index()]
                };
                assert_eq!(central, distributed, "seed {seed}, dest {t}");
            }
        }
    }

    #[test]
    fn extracted_paths_validate_and_match_cost() {
        let mut rng = SmallRng::seed_from_u64(11);
        let net = random_network(topology::abilene(), &InstanceConfig::standard(3), &mut rng)
            .expect("valid");
        let tree = distributed_tree(&net, 2.into()).expect("terminates");
        for t in 0..net.node_count() {
            let t = NodeId::new(t);
            if let Some(p) = tree.path_to(t) {
                p.validate(&net).expect("valid path");
                if t != NodeId::new(2) {
                    assert_eq!(p.cost(), tree.costs[t.index()]);
                }
            } else {
                assert!(tree.costs[t.index()].is_infinite());
            }
        }
    }

    #[test]
    fn message_count_is_bounded_by_relaxation_volume() {
        // Data messages are at most (improvements per X state) × fan-out;
        // sanity-check against the paper's km bound times a small factor.
        let mut rng = SmallRng::seed_from_u64(5);
        let net = random_network(topology::nsfnet(), &InstanceConfig::standard(6), &mut rng)
            .expect("valid");
        let tree = distributed_tree(&net, 0.into()).expect("terminates");
        let km = (net.k() * net.link_count()) as u64;
        assert!(
            tree.data_messages <= 4 * km,
            "data messages {} far exceed km = {km}",
            tree.data_messages
        );
    }

    #[test]
    fn route_distributed_handles_edge_cases() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = wdm_core::WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 3)])
            .build()
            .expect("valid");
        let trivial = route_distributed(&net, 1.into(), 1.into()).expect("ok");
        assert_eq!(trivial.cost, Cost::ZERO);
        assert!(trivial.path.expect("empty path").is_empty());
        // t unreachable from s (no reverse link).
        let back = route_distributed(&net, 1.into(), 0.into()).expect("ok");
        assert!(back.path.is_none());
        assert!(back.cost.is_infinite());
        assert!(matches!(
            route_distributed(&net, 0.into(), 9.into()),
            Err(RouteSimError::Wdm(WdmError::NodeOutOfRange { .. }))
        ));
    }

    #[test]
    fn distributed_trace_matches_table_walk_and_costs_path_length() {
        let mut rng = SmallRng::seed_from_u64(13);
        let net = random_network(topology::nsfnet(), &InstanceConfig::standard(4), &mut rng)
            .expect("valid");
        let tree = distributed_tree(&net, 0.into()).expect("terminates");
        for t in 0..net.node_count() {
            let t = NodeId::new(t);
            let traced = tree.trace_distributed(&net, t).expect("terminates");
            let walked = tree.path_to(t);
            match (traced.path, walked) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.cost(), b.cost(), "dest {t}");
                    a.validate(&net).expect("traced path valid");
                    // One message per physical hop, delivered in sequence.
                    assert_eq!(traced.trace_messages, a.len() as u64, "dest {t}");
                    assert_eq!(traced.makespan, a.len() as u64, "dest {t}");
                }
                (None, None) => {
                    assert_eq!(traced.trace_messages, 0);
                }
                (a, b) => panic!("trace/walk disagree at {t}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn forbidden_conversion_respected_distributively() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = wdm_core::WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            .build()
            .expect("valid");
        let out = route_distributed(&net, 0.into(), 2.into()).expect("ok");
        assert!(out.path.is_none());
    }
}
