//! Deterministic event-driven message-passing simulator.
//!
//! Implements the distributed computational model of the paper's
//! Section III-B: processes sit on the physical nodes of the control
//! network, may exchange messages only along physical links, local
//! computation is free, and each message takes one latency unit to cross a
//! link. Complexity is measured exactly as in Theorem 3 — total messages
//! sent ([`SimStats::messages`]) and the makespan of the computation
//! ([`SimStats::makespan`]).
//!
//! The simulator is single-threaded and deterministic: events are ordered
//! by `(delivery time, sequence number)`, so measured message counts are
//! exactly reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use wdm_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Index of a process (= physical node index).
pub type ProcessId = usize;

/// Simulated clock time (latency units).
pub type SimTime = u64;

/// A message-driven process living on one physical node.
pub trait Process {
    /// The message type exchanged by this protocol.
    type Message: Clone;

    /// Invoked once before any message flows (e.g. the source floods its
    /// initial relaxations here).
    fn on_start(&mut self, ctx: &mut Context<Self::Message>);

    /// Invoked per delivered message.
    fn on_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        ctx: &mut Context<Self::Message>,
    );
}

/// Per-delivery handle through which a process sends messages.
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    outbox: Vec<(ProcessId, M)>,
}

impl<M> Context<M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues `message` for delivery to `to` (must be a physical
    /// out-neighbour; enforced by the simulator at dispatch).
    pub fn send(&mut self, to: ProcessId, message: M) {
        self.outbox.push((to, message));
    }
}

/// Aggregate complexity counters, matching the paper's distributed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total messages sent (the paper's communication complexity).
    pub messages: u64,
    /// Time of the last delivery (the paper's time complexity).
    pub makespan: SimTime,
    /// Number of `on_message` invocations.
    pub deliveries: u64,
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A process tried to message a node that is not a physical
    /// out-neighbour.
    IllegalSend {
        /// Sending process.
        from: ProcessId,
        /// Intended recipient.
        to: ProcessId,
    },
    /// The event budget was exhausted (non-terminating protocol?).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalSend { from, to } => {
                write!(
                    f,
                    "process {from} sent to {to} which is not a physical neighbour"
                )
            }
            SimError::BudgetExhausted { budget } => {
                write!(f, "simulation exceeded the event budget of {budget}")
            }
        }
    }
}

impl Error for SimError {}

/// Registry-backed instruments a simulator reports into when built with
/// [`Simulator::with_metrics`]. All series carry a `protocol` label so
/// several protocols (Chandy–Misra SSSP, the Theorem-3 semilightpath
/// search) can share one registry.
#[derive(Debug, Clone)]
struct SimMetrics {
    /// `wdm_dist_messages_total{protocol}` — messages sent.
    messages: Arc<Counter>,
    /// `wdm_dist_deliveries_total{protocol}` — `on_message` invocations.
    deliveries: Arc<Counter>,
    /// `wdm_dist_rounds_total{protocol}` — delivery rounds (runs of
    /// equal delivery times, plus the start phase when it sends).
    rounds: Arc<Counter>,
    /// `wdm_dist_round_messages{protocol}` — messages sent per round.
    round_messages: Arc<Histogram>,
    /// `wdm_dist_makespan{protocol}` — last run's makespan.
    makespan: Arc<Gauge>,
}

impl SimMetrics {
    fn resolve(registry: &MetricsRegistry, protocol: &str) -> Self {
        let labels: &[(&str, &str)] = &[("protocol", protocol)];
        SimMetrics {
            messages: registry.counter("wdm_dist_messages_total", labels),
            deliveries: registry.counter("wdm_dist_deliveries_total", labels),
            rounds: registry.counter("wdm_dist_rounds_total", labels),
            round_messages: registry.histogram("wdm_dist_round_messages", labels),
            makespan: registry.gauge("wdm_dist_makespan", labels),
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator: a set of processes plus the physical communication
/// topology.
///
/// # Examples
///
/// ```
/// use wdm_distributed::sim::{Context, Process, ProcessId, Simulator};
///
/// /// Each process forwards a token once, then stops.
/// struct Relay { id: ProcessId, n: usize, seen: bool }
/// impl Process for Relay {
///     type Message = u32;
///     fn on_start(&mut self, ctx: &mut Context<u32>) {
///         if self.id == 0 { ctx.send(1, 7); self.seen = true; }
///     }
///     fn on_message(&mut self, _from: ProcessId, m: u32, ctx: &mut Context<u32>) {
///         if !self.seen {
///             self.seen = true;
///             let next = (self.id + 1) % self.n;
///             ctx.send(next, m);
///         }
///     }
/// }
///
/// let n = 4;
/// let procs: Vec<Relay> = (0..n).map(|id| Relay { id, n, seen: false }).collect();
/// // Ring topology: i → i+1 (mod n).
/// let topo: Vec<Vec<ProcessId>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
/// let mut sim = Simulator::new(procs, topo);
/// let stats = sim.run().expect("terminates");
/// assert_eq!(stats.messages, 4);       // token crosses 4 links
/// assert_eq!(stats.makespan, 4);       // one latency unit per hop
/// ```
#[derive(Debug)]
pub struct Simulator<P: Process> {
    processes: Vec<P>,
    /// `out_neighbours[p]` — processes `p` may message.
    out_neighbours: Vec<Vec<ProcessId>>,
    latency: SimTime,
    /// Optional per-channel latency overrides: `latencies[p]` lists
    /// `(neighbour, latency)`; unlisted channels use the default.
    latencies: Vec<Vec<(ProcessId, SimTime)>>,
    queue: BinaryHeap<Reverse<Event>>,
    payloads: Vec<Option<(ProcessId, ProcessId, P::Message)>>,
    stats: SimStats,
    event_budget: u64,
    metrics: Option<SimMetrics>,
}

impl<P: Process> Simulator<P> {
    /// Creates a simulator with unit link latency.
    ///
    /// `out_neighbours[p]` lists the processes `p` may send to (the
    /// physical out-adjacency of the control network).
    ///
    /// # Panics
    ///
    /// Panics if the topology size differs from the process count.
    pub fn new(processes: Vec<P>, out_neighbours: Vec<Vec<ProcessId>>) -> Self {
        assert_eq!(
            processes.len(),
            out_neighbours.len(),
            "topology size must match process count"
        );
        let n = processes.len();
        Simulator {
            processes,
            out_neighbours,
            latency: 1,
            latencies: vec![Vec::new(); n],
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            stats: SimStats::default(),
            event_budget: 500_000_000,
            metrics: None,
        }
    }

    /// Reports this simulator's counters into `registry` under the
    /// `protocol` label: totals (`wdm_dist_messages_total`,
    /// `wdm_dist_deliveries_total`), per-round message counts
    /// (`wdm_dist_rounds_total`, the `wdm_dist_round_messages`
    /// histogram — a round is a maximal run of deliveries at one
    /// simulated time, with the start phase counting as a round when it
    /// sends), and the final `wdm_dist_makespan` gauge. Metrics are
    /// flushed as [`run`](Self::run) progresses and on success.
    pub fn with_metrics(mut self, registry: &MetricsRegistry, protocol: &str) -> Self {
        self.metrics = Some(SimMetrics::resolve(registry, protocol));
        self
    }

    /// Sets the per-link latency (default 1).
    pub fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }

    /// Sets per-channel latency overrides: `latencies[p]` lists
    /// `(neighbour, latency)` pairs for channels leaving `p`; channels not
    /// listed keep the default latency. Latencies must be ≥ 1 so causality
    /// is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the override table size differs from the process count or
    /// any latency is zero.
    pub fn with_latencies(mut self, latencies: Vec<Vec<(ProcessId, SimTime)>>) -> Self {
        assert_eq!(
            latencies.len(),
            self.processes.len(),
            "one override list per process"
        );
        assert!(
            latencies.iter().flatten().all(|&(_, l)| l >= 1),
            "latencies must be at least 1"
        );
        self.latencies = latencies;
        self
    }

    fn latency_of(&self, from: ProcessId, to: ProcessId) -> SimTime {
        self.latencies[from]
            .iter()
            .find(|&&(nbr, _)| nbr == to)
            .map(|&(_, l)| l)
            .unwrap_or(self.latency)
    }

    /// Sets the safety budget on delivered events (default 5·10⁸).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Runs to quiescence (no in-flight messages).
    ///
    /// # Errors
    ///
    /// * [`SimError::IllegalSend`] if a process messages a non-neighbour;
    /// * [`SimError::BudgetExhausted`] if the protocol does not quiesce
    ///   within the event budget.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        // Start phase at time 0.
        for id in 0..self.processes.len() {
            let mut ctx = Context {
                now: 0,
                outbox: Vec::new(),
            };
            self.processes[id].on_start(&mut ctx);
            self.dispatch(id, 0, ctx.outbox)?;
        }

        // Round accounting: a round is a maximal run of deliveries at one
        // simulated time; the start phase is the round at t = 0. Each
        // boundary flushes the messages sent during the closed round.
        let mut round_at: SimTime = 0;
        let mut round_base: u64 = 0;

        while let Some(Reverse(event)) = self.queue.pop() {
            if self.stats.deliveries >= self.event_budget {
                return Err(SimError::BudgetExhausted {
                    budget: self.event_budget,
                });
            }
            if event.at != round_at {
                self.flush_round(self.stats.messages - round_base);
                round_base = self.stats.messages;
                round_at = event.at;
            }
            let Some((from, to, message)) = self.payloads[event.seq as usize].take() else {
                unreachable!("payload present for scheduled event")
            };
            self.stats.deliveries += 1;
            self.stats.makespan = self.stats.makespan.max(event.at);
            let mut ctx = Context {
                now: event.at,
                outbox: Vec::new(),
            };
            self.processes[to].on_message(from, message, &mut ctx);
            self.dispatch(to, event.at, ctx.outbox)?;
        }
        if self.stats.messages > round_base || self.stats.deliveries > 0 {
            self.flush_round(self.stats.messages - round_base);
        }
        if let Some(m) = &self.metrics {
            m.messages.add(self.stats.messages);
            m.deliveries.add(self.stats.deliveries);
            m.makespan
                .set(self.stats.makespan.min(i64::MAX as u64) as i64);
        }
        Ok(self.stats)
    }

    /// Closes one delivery round: counts it and records how many
    /// messages were dispatched while it ran. No-op when detached.
    fn flush_round(&self, sent: u64) {
        if let Some(m) = &self.metrics {
            m.rounds.inc();
            m.round_messages.observe(sent);
        }
    }

    fn dispatch(
        &mut self,
        from: ProcessId,
        now: SimTime,
        outbox: Vec<(ProcessId, P::Message)>,
    ) -> Result<(), SimError> {
        for (to, message) in outbox {
            if !self.out_neighbours[from].contains(&to) {
                return Err(SimError::IllegalSend { from, to });
            }
            let latency = self.latency_of(from, to);
            let seq = self.payloads.len() as u64;
            self.payloads.push(Some((from, to, message)));
            self.queue.push(Reverse(Event {
                at: now + latency,
                seq,
            }));
            self.stats.messages += 1;
        }
        Ok(())
    }

    /// Read access to a process after the run (for result extraction).
    pub fn process(&self, id: ProcessId) -> &P {
        &self.processes[id]
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods a wave from node 0; each node forwards once.
    struct Flood {
        id: ProcessId,
        neighbours: Vec<ProcessId>,
        level: Option<u64>,
    }

    impl Process for Flood {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            if self.id == 0 {
                self.level = Some(0);
                for &n in &self.neighbours {
                    ctx.send(n, 1);
                }
            }
        }

        fn on_message(&mut self, _from: ProcessId, level: u64, ctx: &mut Context<u64>) {
            if self.level.is_none() {
                self.level = Some(level);
                for &n in &self.neighbours {
                    ctx.send(n, level + 1);
                }
            }
        }
    }

    fn line_topology(n: usize) -> Vec<Vec<ProcessId>> {
        (0..n)
            .map(|i| {
                let mut adj = Vec::new();
                if i > 0 {
                    adj.push(i - 1);
                }
                if i + 1 < n {
                    adj.push(i + 1);
                }
                adj
            })
            .collect()
    }

    #[test]
    fn flood_levels_equal_bfs_depth() {
        let topo = line_topology(5);
        let procs: Vec<Flood> = (0..5)
            .map(|id| Flood {
                id,
                neighbours: topo[id].clone(),
                level: None,
            })
            .collect();
        let mut sim = Simulator::new(procs, topo);
        let stats = sim.run().expect("terminates");
        for i in 0..5 {
            assert_eq!(sim.process(i).level, Some(i as u64));
        }
        // Wave reaches node 4 after 4 latency units; node 4's redundant
        // echo back to node 3 lands at t = 5 and is the last delivery.
        assert_eq!(stats.makespan, 5);
        assert!(stats.messages >= 4);
    }

    #[test]
    fn latency_scales_makespan() {
        let topo = line_topology(4);
        let procs: Vec<Flood> = (0..4)
            .map(|id| Flood {
                id,
                neighbours: topo[id].clone(),
                level: None,
            })
            .collect();
        let mut sim = Simulator::new(procs, topo).with_latency(10);
        let stats = sim.run().expect("terminates");
        // Wave front at t = 30 plus the end node's echo at t = 40.
        assert_eq!(stats.makespan, 40);
    }

    #[test]
    fn illegal_send_is_reported() {
        struct Bad;
        impl Process for Bad {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.send(1, ());
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<()>) {}
        }
        let mut sim = Simulator::new(vec![Bad, Bad], vec![vec![], vec![0]]);
        assert_eq!(sim.run(), Err(SimError::IllegalSend { from: 0, to: 1 }));
    }

    #[test]
    fn budget_stops_infinite_protocols() {
        struct PingPong {
            id: ProcessId,
        }
        impl Process for PingPong {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                if self.id == 0 {
                    ctx.send(1, ());
                }
            }
            fn on_message(&mut self, from: ProcessId, _: (), ctx: &mut Context<()>) {
                ctx.send(from, ());
            }
        }
        let mut sim = Simulator::new(
            vec![PingPong { id: 0 }, PingPong { id: 1 }],
            vec![vec![1], vec![0]],
        )
        .with_event_budget(100);
        assert_eq!(sim.run(), Err(SimError::BudgetExhausted { budget: 100 }));
    }

    #[test]
    fn quiescent_network_terminates_immediately() {
        struct Idle;
        impl Process for Idle {
            type Message = ();
            fn on_start(&mut self, _: &mut Context<()>) {}
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<()>) {}
        }
        let mut sim = Simulator::new(vec![Idle, Idle], vec![vec![1], vec![0]]);
        let stats = sim.run().expect("terminates");
        assert_eq!(stats, SimStats::default());
    }

    #[test]
    fn metrics_match_sim_stats_and_count_rounds() {
        let registry = MetricsRegistry::new();
        let topo = line_topology(5);
        let procs: Vec<Flood> = (0..5)
            .map(|id| Flood {
                id,
                neighbours: topo[id].clone(),
                level: None,
            })
            .collect();
        let mut sim = Simulator::new(procs, topo).with_metrics(&registry, "flood");
        let stats = sim.run().expect("terminates");

        let labels: &[(&str, &str)] = &[("protocol", "flood")];
        assert_eq!(
            registry.counter("wdm_dist_messages_total", labels).get(),
            stats.messages
        );
        assert_eq!(
            registry.counter("wdm_dist_deliveries_total", labels).get(),
            stats.deliveries
        );
        assert_eq!(
            registry.gauge("wdm_dist_makespan", labels).get(),
            stats.makespan as i64
        );
        // Unit latency ⇒ one delivery round per time 1..=makespan, plus
        // the start round at t = 0.
        assert_eq!(
            registry.counter("wdm_dist_rounds_total", labels).get(),
            stats.makespan + 1
        );
        // Per-round message counts cover every message exactly once.
        let h = registry.histogram("wdm_dist_round_messages", labels);
        assert_eq!(h.count(), stats.makespan + 1);
        assert_eq!(h.sum(), stats.messages);
    }

    #[test]
    fn quiescent_simulator_reports_no_rounds() {
        struct Idle;
        impl Process for Idle {
            type Message = ();
            fn on_start(&mut self, _: &mut Context<()>) {}
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<()>) {}
        }
        let registry = MetricsRegistry::new();
        let mut sim = Simulator::new(vec![Idle, Idle], vec![vec![1], vec![0]])
            .with_metrics(&registry, "idle");
        sim.run().expect("terminates");
        let labels: &[(&str, &str)] = &[("protocol", "idle")];
        assert_eq!(registry.counter("wdm_dist_rounds_total", labels).get(), 0);
        assert_eq!(registry.counter("wdm_dist_messages_total", labels).get(), 0);
    }

    #[test]
    fn two_protocols_share_one_registry_without_mixing() {
        let registry = MetricsRegistry::new();
        for name in ["a", "b"] {
            let topo = line_topology(3);
            let procs: Vec<Flood> = (0..3)
                .map(|id| Flood {
                    id,
                    neighbours: topo[id].clone(),
                    level: None,
                })
                .collect();
            let mut sim = Simulator::new(procs, topo).with_metrics(&registry, name);
            sim.run().expect("terminates");
        }
        let a = registry
            .counter("wdm_dist_messages_total", &[("protocol", "a")])
            .get();
        let b = registry
            .counter("wdm_dist_messages_total", &[("protocol", "b")])
            .get();
        assert!(a > 0);
        assert_eq!(a, b, "identical runs, separate series");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = line_topology(6);
            let procs: Vec<Flood> = (0..6)
                .map(|id| Flood {
                    id,
                    neighbours: topo[id].clone(),
                    level: None,
                })
                .collect();
            let mut sim = Simulator::new(procs, topo);
            sim.run().expect("terminates")
        };
        assert_eq!(run(), run());
    }
}
