//! Property-based validation of `k_shortest_semilightpaths` against a
//! brute-force enumerator of state-simple semilightpaths.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::{k_shortest_semilightpaths, Cost, Hop, Wavelength, WdmNetwork};
use wdm_graph::{topology, LinkId, NodeId};

/// Enumerates every semilightpath from `s` to `t` that is loopless in the
/// layered graph — never repeating a routing state, where a state is
/// (node, wavelength, receive side `X` / transmit side `Y`) — by DFS,
/// returning the sorted cost multiset. This is exactly the path space
/// `k_shortest_semilightpaths` documents.
fn brute_force_costs(net: &WdmNetwork, s: NodeId, t: NodeId) -> Vec<Cost> {
    let k = net.k();
    let mut out = Vec::new();
    // `visited_x[v*k+λ]` — arrived at v on λ; `visited_y[v*k+λ]` —
    // transmitted from v on λ.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        net: &WdmNetwork,
        t: NodeId,
        node: NodeId,
        arrived: Option<Wavelength>,
        visited_x: &mut Vec<bool>,
        visited_y: &mut Vec<bool>,
        k: usize,
        cost: Cost,
        out: &mut Vec<Cost>,
    ) {
        if node == t && arrived.is_some() {
            out.push(cost);
        }
        let g = net.graph();
        for &e in g.out_links(node) {
            for (lambda, w) in net.wavelengths_on(e).iter() {
                let conv = match arrived {
                    None => Cost::ZERO,
                    Some(from) => net.conversion_cost(node, from, lambda),
                };
                let next_cost = cost + conv + w;
                if next_cost.is_infinite() {
                    continue;
                }
                let y_state = node.index() * k + lambda.index();
                if visited_y[y_state] {
                    continue;
                }
                let head = g.link(e).head();
                let x_state = head.index() * k + lambda.index();
                if visited_x[x_state] {
                    continue;
                }
                visited_y[y_state] = true;
                visited_x[x_state] = true;
                dfs(
                    net,
                    t,
                    head,
                    Some(lambda),
                    visited_x,
                    visited_y,
                    k,
                    next_cost,
                    out,
                );
                visited_y[y_state] = false;
                visited_x[x_state] = false;
            }
        }
    }
    let mut visited_x = vec![false; net.node_count() * k];
    let mut visited_y = vec![false; net.node_count() * k];
    dfs(
        net,
        t,
        s,
        None,
        &mut visited_x,
        &mut visited_y,
        k,
        Cost::ZERO,
        &mut out,
    );
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Yen's first `j` costs equal the brute-force cheapest `j` costs.
    #[test]
    fn yen_prefix_matches_brute_force(seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = topology::random_sparse(6, 2, 4, &mut rng).expect("feasible");
        let net = random_network(
            graph,
            &InstanceConfig {
                k: 2,
                availability: Availability::Probability(0.6),
                link_cost: (1, 20),
                conversion: ConversionSpec::Uniform { lo: 1, hi: 3 },
            },
            &mut rng,
        ).expect("valid");
        let (s, t) = (NodeId::new(0), NodeId::new(3));
        let want = brute_force_costs(&net, s, t);
        let got = k_shortest_semilightpaths(&net, s, t, 5).expect("ok");
        let got_costs: Vec<Cost> = got.iter().map(|p| p.cost()).collect();
        let j = got_costs.len().min(want.len()).min(5);
        prop_assert_eq!(&got_costs[..j], &want[..j], "seed {}", seed);
        // Yen found as many as exist (up to 5).
        prop_assert_eq!(got_costs.len(), want.len().min(5));
        for p in &got {
            p.validate(&net).expect("valid path");
        }
    }

    /// The returned paths are pairwise distinct and sorted.
    #[test]
    fn yen_paths_are_distinct_and_sorted(seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = topology::random_sparse(8, 4, 4, &mut rng).expect("feasible");
        let net = random_network(graph, &InstanceConfig::standard(3), &mut rng).expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 4.into(), 6).expect("ok");
        for w in paths.windows(2) {
            prop_assert!(w[0].cost() <= w[1].cost());
        }
        let mut keys: Vec<Vec<(LinkId, Wavelength)>> = paths
            .iter()
            .map(|p| p.hops().iter().map(|&Hop { link, wavelength }| (link, wavelength)).collect())
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate paths returned");
    }
}
