//! Property-based tests of the auxiliary-graph construction: the paper's
//! Observations 1–5 must hold on arbitrary random instances, and the
//! construction must be structurally sound (every edge connects the node
//! kinds the paper prescribes).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::csr::EdgeRole;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::{AuxNodeKind, AuxiliaryGraph};
use wdm_graph::topology;

fn instance(seed: u64, n: usize, k: usize, p: f64) -> wdm_core::WdmNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = topology::random_sparse(n, n / 2, 4, &mut rng).expect("feasible");
    random_network(
        graph,
        &InstanceConfig {
            k,
            availability: Availability::Probability(p),
            link_cost: (1, 50),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 4 },
        },
        &mut rng,
    )
    .expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Observations 1–3: size bounds hold on arbitrary instances.
    #[test]
    fn observation_bounds_hold(
        seed in 0u64..10_000,
        n in 4usize..24,
        k in 1usize..8,
        p in 0.1f64..1.0,
    ) {
        let net = instance(seed, n, k, p);
        let aux = AuxiliaryGraph::core(&net);
        let stats = aux.stats();
        stats.check_paper_bounds().map_err(TestCaseError::fail)?;
        // Observation 1 per node.
        for v in net.graph().nodes() {
            prop_assert!(aux.x_len(v) + aux.y_len(v) <= 2 * k);
        }
        // |E_org| equals Σ|Λ(e)| exactly, not just bounded by it.
        prop_assert_eq!(stats.multigraph_links, net.multigraph_link_count());
        // Corrected Observation 5: |V'| ≤ 2·Σ|Λ(e)|.
        prop_assert!(stats.core_nodes <= 2 * net.multigraph_link_count());
    }

    /// Structural soundness: every edge runs between the node kinds the
    /// construction prescribes.
    #[test]
    fn edge_endpoints_have_correct_kinds(
        seed in 0u64..10_000,
        k in 1usize..6,
    ) {
        let net = instance(seed, 10, k, 0.5);
        let aux = AuxiliaryGraph::for_pair(&net, 0.into(), 5.into());
        let g = aux.graph();
        for u in 0..g.node_count() {
            for edge in g.out_edges(u) {
                let from = aux.kind(u);
                let to = aux.kind(edge.target);
                match edge.role {
                    EdgeRole::Conversion { node, from: fw, to: tw } => {
                        // X_v(λp) → Y_v(λq), same physical node.
                        let from_ok = matches!(
                            from,
                            AuxNodeKind::In { node: nf, wavelength } if nf == node && wavelength == fw
                        );
                        let to_ok = matches!(
                            to,
                            AuxNodeKind::Out { node: nt, wavelength } if nt == node && wavelength == tw
                        );
                        prop_assert!(from_ok, "conversion tail kind");
                        prop_assert!(to_ok, "conversion head kind");
                        // Cost matches the conversion function.
                        prop_assert_eq!(edge.cost, net.conversion_cost(node, fw, tw));
                    }
                    EdgeRole::Traversal { link, wavelength } => {
                        // Y_tail(λ) → X_head(λ), cost = w(e, λ).
                        let l = net.graph().link(link);
                        let from_ok = matches!(
                            from,
                            AuxNodeKind::Out { node, wavelength: w } if node == l.tail() && w == wavelength
                        );
                        let to_ok = matches!(
                            to,
                            AuxNodeKind::In { node, wavelength: w } if node == l.head() && w == wavelength
                        );
                        prop_assert!(from_ok, "traversal tail kind");
                        prop_assert!(to_ok, "traversal head kind");
                        prop_assert_eq!(edge.cost, net.link_cost(link, wavelength));
                    }
                    EdgeRole::Tap => {
                        prop_assert_eq!(edge.cost, wdm_core::Cost::ZERO);
                        let source_tap = matches!(from, AuxNodeKind::Source { .. })
                            && matches!(to, AuxNodeKind::Out { .. });
                        let sink_tap = matches!(from, AuxNodeKind::In { .. })
                            && matches!(to, AuxNodeKind::Sink { .. });
                        prop_assert!(source_tap || sink_tap, "tap edge shape");
                    }
                }
            }
        }
    }

    /// The pair construction and the all-pairs construction agree on the
    /// core: same `G'` sizes regardless of which terminals are attached.
    #[test]
    fn terminal_choice_does_not_change_the_core(seed in 0u64..10_000) {
        let net = instance(seed, 12, 4, 0.5);
        let core = AuxiliaryGraph::core(&net).stats();
        let pair = AuxiliaryGraph::for_pair(&net, 0.into(), 7.into()).stats();
        let all = AuxiliaryGraph::for_all_pairs(&net).stats();
        for s in [pair, all] {
            prop_assert_eq!(s.core_nodes, core.core_nodes);
            prop_assert_eq!(s.conversion_edges, core.conversion_edges);
            prop_assert_eq!(s.multigraph_links, core.multigraph_links);
        }
        prop_assert_eq!(pair.terminal_nodes, 2);
        prop_assert_eq!(all.terminal_nodes, 2 * net.node_count());
        prop_assert_eq!(all.tap_edges, all.core_nodes);
    }
}
