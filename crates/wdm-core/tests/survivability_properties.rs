//! Property-based tests of the protection-pair solvers.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::{disjoint_semilightpath_pair, find_optimal_semilightpath, Disjointness};
use wdm_graph::{topology, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_pairs_are_valid_and_disjoint(seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = topology::random_sparse(10, 6, 4, &mut rng).expect("feasible");
        let net = random_network(
            graph,
            &InstanceConfig {
                k: 3,
                availability: Availability::Probability(0.7),
                link_cost: (5, 40),
                conversion: ConversionSpec::Uniform { lo: 1, hi: 3 },
            },
            &mut rng,
        ).expect("valid");
        let (s, t) = (NodeId::new(0), NodeId::new(5));
        if let Some(pair) =
            disjoint_semilightpath_pair(&net, s, t, Disjointness::LinkWavelength).expect("ok")
        {
            pair.primary.validate(&net).expect("primary valid");
            pair.backup.validate(&net).expect("backup valid");
            prop_assert!(pair.is_link_wavelength_disjoint());
            prop_assert!(pair.primary.cost() <= pair.backup.cost());
            // The pair's primary can never beat the unconstrained optimum.
            let solo = find_optimal_semilightpath(&net, s, t)
                .expect("ok")
                .expect("pair exists ⇒ single path exists");
            prop_assert!(solo.cost() <= pair.primary.cost());
            // And the pair total is at least twice the optimum.
            prop_assert!(pair.total_cost() >= solo.cost() + solo.cost());
        }
    }

    /// Physical-link-disjoint pairs are a subset of (link, λ)-disjoint
    /// pairs: whenever the heuristic finds one, the exact solver must
    /// find one too, at no greater total cost.
    #[test]
    fn exact_dominates_heuristic(seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = topology::random_sparse(10, 6, 4, &mut rng).expect("feasible");
        let net = random_network(
            graph,
            &InstanceConfig {
                k: 3,
                availability: Availability::Probability(0.7),
                link_cost: (5, 40),
                conversion: ConversionSpec::Uniform { lo: 1, hi: 3 },
            },
            &mut rng,
        ).expect("valid");
        let (s, t) = (NodeId::new(1), NodeId::new(7));
        let heuristic =
            disjoint_semilightpath_pair(&net, s, t, Disjointness::PhysicalLink).expect("ok");
        let exact =
            disjoint_semilightpath_pair(&net, s, t, Disjointness::LinkWavelength).expect("ok");
        if let Some(h) = heuristic {
            let e = exact.expect("heuristic pair is also λ-disjoint, so exact must succeed");
            prop_assert!(e.total_cost() <= h.total_cost(),
                "exact {} vs heuristic {}", e.total_cost(), h.total_cost());
        }
    }

    /// On a two-wavelength full-availability network every routable pair
    /// is protectable (the same physical route on the other wavelength
    /// always works).
    #[test]
    fn full_availability_two_lambdas_always_protectable(seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = topology::random_sparse(8, 4, 4, &mut rng).expect("feasible");
        let net = random_network(
            graph,
            &InstanceConfig {
                k: 2,
                availability: Availability::Full,
                link_cost: (5, 20),
                conversion: ConversionSpec::AllFree,
            },
            &mut rng,
        ).expect("valid");
        for t in 1..net.node_count() {
            let t = NodeId::new(t);
            if find_optimal_semilightpath(&net, NodeId::new(0), t).expect("ok").is_some() {
                let pair = disjoint_semilightpath_pair(
                    &net, NodeId::new(0), t, Disjointness::LinkWavelength,
                ).expect("ok");
                prop_assert!(pair.is_some(), "routable ⇒ protectable at k = 2, dest {}", t);
            }
        }
    }
}
