//! Serial-equivalence conformance suite for the parallel all-pairs
//! solver.
//!
//! Corollary 1 makes the all-pairs matrix `n` independent shortest-path
//! trees over one shared auxiliary graph, so `AllPairs::solve_parallel`
//! promises **bit-identical** output to `AllPairs::solve_with` for every
//! heap kind and every thread count. These properties pin that contract
//! on random instances: identical cost matrices, zero diagonals,
//! identical settled totals and aux stats, and agreement with the
//! tree-retaining `AllPairsPaths` solver's per-pair path costs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::{AllPairs, AllPairsPaths, Cost, HeapKind, WdmNetwork};
use wdm_graph::{topology, NodeId};

/// Thread counts the contract is exercised at: inline, split, and more
/// workers than most generated instances have rows.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn instance(seed: u64, n: usize, k: usize, p: f64) -> WdmNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = topology::random_sparse(n, n / 2, 4, &mut rng).expect("feasible");
    random_network(
        graph,
        &InstanceConfig {
            k,
            availability: Availability::Probability(p),
            link_cost: (1, 50),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 4 },
        },
        &mut rng,
    )
    .expect("valid")
}

fn assert_equivalent(
    serial: &AllPairs,
    parallel: &AllPairs,
    n: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(parallel.node_count(), serial.node_count(), "{}", label);
    prop_assert_eq!(
        parallel.total_settled(),
        serial.total_settled(),
        "{}",
        label
    );
    prop_assert_eq!(parallel.aux_stats(), serial.aux_stats(), "{}", label);
    for s in 0..n {
        for t in 0..n {
            prop_assert_eq!(
                parallel.cost(NodeId::new(s), NodeId::new(t)),
                serial.cost(NodeId::new(s), NodeId::new(t)),
                "{}: pair {} → {}",
                label,
                s,
                t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core contract: for every heap kind and thread count, the
    /// parallel matrix is identical to the serial one.
    #[test]
    fn parallel_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        n in 4usize..20,
        k in 1usize..6,
        p in 0.1f64..1.0,
    ) {
        let net = instance(seed, n, k, p);
        for heap in HeapKind::ALL {
            let serial = AllPairs::solve_with(&net, heap);
            for threads in THREAD_COUNTS {
                let parallel = AllPairs::solve_parallel(&net, heap, threads);
                assert_equivalent(&serial, &parallel, n, &format!("{heap} × {threads}T"))?;
            }
        }
    }

    /// Diagonal entries are exactly zero however the matrix is computed.
    #[test]
    fn diagonal_is_zero_for_every_thread_count(
        seed in 0u64..10_000,
        n in 4usize..24,
        k in 1usize..6,
    ) {
        let net = instance(seed, n, k, 0.5);
        for threads in THREAD_COUNTS {
            let ap = AllPairs::solve_parallel(&net, HeapKind::Fibonacci, threads);
            for v in 0..n {
                prop_assert_eq!(ap.cost(NodeId::new(v), NodeId::new(v)), Cost::ZERO);
            }
        }
    }

    /// Per-pair path costs: the tree-retaining solver's decoded paths
    /// must price exactly what the parallel matrix claims, and each
    /// decoded path must validate against the network.
    #[test]
    fn parallel_matrix_matches_decoded_path_costs(
        seed in 0u64..10_000,
        n in 4usize..14,
        k in 1usize..5,
    ) {
        let net = instance(seed, n, k, 0.6);
        let paths = AllPairsPaths::solve(&net);
        let parallel = AllPairs::solve_parallel(&net, HeapKind::Fibonacci, 2);
        for s in 0..n {
            for t in 0..n {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                let cost = parallel.cost(sn, tn);
                prop_assert_eq!(cost, paths.cost(sn, tn), "pair {} → {}", s, t);
                match paths.path(sn, tn) {
                    Some(p) => {
                        prop_assert_eq!(p.cost(), cost, "decoded path cost {} → {}", s, t);
                        p.validate(&net).map_err(TestCaseError::fail)?;
                    }
                    None => prop_assert!(cost.is_infinite(), "no path yet finite {} → {}", s, t),
                }
            }
        }
    }

    /// Thread-count invariance holds on structured topologies too
    /// (rings exercise the wrap-around rows; grids the sparse middle).
    #[test]
    fn structured_topologies_are_thread_invariant(
        ring_n in 3usize..12,
        k in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for graph in [topology::ring(ring_n, true), topology::grid(2, ring_n.div_ceil(2))] {
            let net = random_network(
                graph,
                &InstanceConfig {
                    k,
                    availability: Availability::Probability(0.7),
                    link_cost: (1, 20),
                    conversion: ConversionSpec::Uniform { lo: 1, hi: 3 },
                },
                &mut rng,
            )
            .expect("valid");
            let n = net.node_count();
            let serial = AllPairs::solve_with(&net, HeapKind::Binary);
            for threads in THREAD_COUNTS {
                let parallel = AllPairs::solve_parallel(&net, HeapKind::Binary, threads);
                assert_equivalent(&serial, &parallel, n, &format!("{threads}T"))?;
            }
        }
    }
}
