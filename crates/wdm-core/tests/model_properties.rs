//! Property-based tests of the model layer: cost algebra, wavelength-set
//! semantics against a reference model, conversion-policy laws, and
//! path-validation soundness under mutation.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wdm_core::{
    ConversionMatrix, ConversionPolicy, Cost, Hop, Semilightpath, Wavelength, WavelengthSet,
    WdmNetwork,
};
use wdm_graph::{DiGraph, LinkId};

fn cost_strategy() -> impl Strategy<Value = Cost> {
    prop_oneof![
        8 => (0u64..1_000_000).prop_map(Cost::new),
        1 => Just(Cost::INFINITY),
    ]
}

proptest! {
    #[test]
    fn cost_addition_is_commutative_and_associative(
        a in cost_strategy(),
        b in cost_strategy(),
        c in cost_strategy(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Cost::ZERO, a);
    }

    #[test]
    fn cost_addition_is_monotone(
        a in cost_strategy(),
        b in cost_strategy(),
        c in cost_strategy(),
    ) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    #[test]
    fn infinity_is_absorbing(a in cost_strategy()) {
        prop_assert_eq!(a + Cost::INFINITY, Cost::INFINITY);
        prop_assert!(a <= Cost::INFINITY);
    }

    #[test]
    fn wavelength_set_matches_btreeset_model(
        ops in prop::collection::vec((0usize..100, prop::bool::ANY), 0..200),
    ) {
        let mut set = WavelengthSet::empty(100);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (idx, insert) in ops {
            let w = Wavelength::new(idx);
            if insert {
                prop_assert_eq!(set.insert(w), model.insert(idx));
            } else {
                prop_assert_eq!(set.remove(w), model.remove(&idx));
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let got: Vec<usize> = set.iter().map(|w| w.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn set_algebra_laws(
        a in prop::collection::btree_set(0usize..64, 0..40),
        b in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let sa = WavelengthSet::from_indices(64, a.iter().copied());
        let sb = WavelengthSet::from_indices(64, b.iter().copied());
        let union = sa.union(&sb);
        let inter = sa.intersection(&sb);
        // |A∪B| + |A∩B| = |A| + |B|
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        for i in 0..64 {
            let w = Wavelength::new(i);
            prop_assert_eq!(union.contains(w), a.contains(&i) || b.contains(&i));
            prop_assert_eq!(inter.contains(w), a.contains(&i) && b.contains(&i));
        }
    }

    #[test]
    fn conversion_policies_have_zero_diagonal(
        kind in 0u8..4,
        cost in 0u64..100,
        radius in 0usize..8,
        p in 0usize..8,
        q in 0usize..8,
    ) {
        let policy = match kind {
            0 => ConversionPolicy::Forbidden,
            1 => ConversionPolicy::Free,
            2 => ConversionPolicy::Uniform(Cost::new(cost)),
            _ => ConversionPolicy::Banded {
                radius,
                base: Cost::new(cost),
                slope: Cost::new(1),
            },
        };
        let (wp, wq) = (Wavelength::new(p), Wavelength::new(q));
        prop_assert_eq!(policy.cost(wp, wp), Cost::ZERO);
        // allows() agrees with finiteness of cost().
        prop_assert_eq!(policy.allows(wp, wq), policy.cost(wp, wq).is_finite());
    }

    #[test]
    fn banded_policy_is_symmetric_in_distance(
        radius in 0usize..6,
        base in 0u64..50,
        slope in 0u64..10,
        p in 0usize..12,
        q in 0usize..12,
    ) {
        let policy = ConversionPolicy::Banded {
            radius,
            base: Cost::new(base),
            slope: Cost::new(slope),
        };
        let (wp, wq) = (Wavelength::new(p), Wavelength::new(q));
        prop_assert_eq!(policy.cost(wp, wq), policy.cost(wq, wp));
    }

    #[test]
    fn matrix_set_then_get(
        entries in prop::collection::vec((0usize..6, 0usize..6, 0u64..100), 0..30),
    ) {
        let mut m = ConversionMatrix::forbidden(6);
        let mut model = std::collections::HashMap::new();
        for (p, q, c) in entries {
            if p != q {
                m.set(Wavelength::new(p), Wavelength::new(q), Cost::new(c));
                model.insert((p, q), Cost::new(c));
            }
        }
        for p in 0..6 {
            for q in 0..6 {
                let want = if p == q {
                    Cost::ZERO
                } else {
                    model.get(&(p, q)).copied().unwrap_or(Cost::INFINITY)
                };
                prop_assert_eq!(m.cost(Wavelength::new(p), Wavelength::new(q)), want);
            }
        }
    }
}

/// A small fixed network for path-mutation tests.
fn fixture() -> WdmNetwork {
    let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3), (1, 3)]);
    WdmNetwork::builder(g, 3)
        .link_wavelengths(0, [(0, 5), (1, 6)])
        .link_wavelengths(1, [(1, 7)])
        .link_wavelengths(2, [(1, 8), (2, 9)])
        .link_wavelengths(3, [(0, 20)])
        .uniform_conversion(ConversionPolicy::Uniform(Cost::new(2)))
        .build()
        .expect("valid")
}

proptest! {
    /// Any single mutation of a valid path's wavelength to an unavailable
    /// one must be caught by validation.
    #[test]
    fn validation_catches_wavelength_corruption(hop_idx in 0usize..3, new_lambda in 0usize..3) {
        let net = fixture();
        let valid = Semilightpath::new(
            vec![
                Hop { link: LinkId::new(0), wavelength: Wavelength::new(1) },
                Hop { link: LinkId::new(1), wavelength: Wavelength::new(1) },
                Hop { link: LinkId::new(2), wavelength: Wavelength::new(1) },
            ],
            Cost::new(21),
        );
        valid.validate(&net).expect("fixture path valid");

        let mut hops = valid.hops().to_vec();
        hops[hop_idx].wavelength = Wavelength::new(new_lambda);
        let mutated = Semilightpath::new(hops.clone(), Cost::new(21));
        if new_lambda == 1 {
            // Unchanged — still valid.
            mutated.validate(&net).expect("identity mutation valid");
        } else {
            // Either the wavelength is unavailable on that link, the cost
            // no longer matches, or a conversion got introduced; some
            // check must fire.
            prop_assert!(mutated.validate(&net).is_err());
        }
    }

    /// Swapping two hops of a multi-hop path breaks contiguity.
    #[test]
    fn validation_catches_reordering(i in 0usize..3, j in 0usize..3) {
        prop_assume!(i != j);
        let net = fixture();
        let mut hops = vec![
            Hop { link: LinkId::new(0), wavelength: Wavelength::new(1) },
            Hop { link: LinkId::new(1), wavelength: Wavelength::new(1) },
            Hop { link: LinkId::new(2), wavelength: Wavelength::new(1) },
        ];
        hops.swap(i, j);
        let mutated = Semilightpath::new(hops, Cost::new(21));
        prop_assert!(mutated.validate(&net).is_err());
    }

    /// The recomputed Equation-(1) cost of an arbitrary hop sequence is
    /// the sum of its parts (link costs + junction conversions).
    #[test]
    fn compute_cost_decomposes(lambdas in prop::collection::vec(0usize..3, 3)) {
        let net = fixture();
        let links = [LinkId::new(0), LinkId::new(1), LinkId::new(2)];
        let hops: Vec<Hop> = links
            .iter()
            .zip(&lambdas)
            .map(|(&link, &l)| Hop { link, wavelength: Wavelength::new(l) })
            .collect();
        let path = Semilightpath::new(hops.clone(), Cost::ZERO);
        let mut expected = Cost::ZERO;
        for (i, hop) in hops.iter().enumerate() {
            expected += net.link_cost(hop.link, hop.wavelength);
            if i + 1 < hops.len() {
                let junction = net.graph().link(hop.link).head();
                expected += net.conversion_cost(junction, hop.wavelength, hops[i + 1].wavelength);
            }
        }
        prop_assert_eq!(path.compute_cost(&net), expected);
    }
}
