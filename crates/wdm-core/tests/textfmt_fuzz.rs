//! Robustness of the `.wdm` parser: arbitrary input must never panic —
//! it either parses to a valid network or returns a structured error.

use proptest::prelude::*;
use wdm_core::textfmt::{from_text, to_text};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fully random text never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,400}") {
        let _ = from_text(&input);
    }

    /// Structured-looking but corrupted instances never panic either.
    #[test]
    fn corrupted_instances_never_panic(
        n in 0usize..20,
        k in 0usize..20,
        lines in prop::collection::vec(
            prop_oneof![
                (0usize..25, 0usize..25, 0usize..40, 0u64..u64::MAX)
                    .prop_map(|(u, v, l, c)| format!("link {u} {v} {l}:{c}")),
                (0usize..25).prop_map(|v| format!("conv {v} free")),
                (0usize..25, 0u64..u64::MAX).prop_map(|(v, c)| format!("conv {v} uniform {c}")),
                (0usize..25, 0usize..40, 0usize..40, 0u64..1000)
                    .prop_map(|(v, p, q, c)| format!("conv {v} matrix {p}>{q}:{c}")),
                Just("link".to_string()),
                Just("conv 0 banded".to_string()),
                Just("garbage directive".to_string()),
            ],
            0..12,
        ),
    ) {
        let text = format!("wdm v1\nn {n}\nk {k}\n{}", lines.join("\n"));
        match from_text(&text) {
            Ok(net) => {
                // Whatever parsed must round-trip.
                let again = from_text(&to_text(&net)).expect("round trip");
                prop_assert_eq!(net, again);
            }
            Err(e) => {
                // Errors must render without panicking.
                let _ = e.to_string();
            }
        }
    }

    /// Huge size declarations are rejected, not allocated.
    #[test]
    fn huge_sizes_are_rejected(n in (1usize << 27)..usize::MAX / 2) {
        let text = format!("wdm v1\nn {n}\nk 1\n");
        prop_assert!(from_text(&text).is_err());
    }
}
