//! The paper's worked example (Figs. 1–4).
//!
//! Section III-A illustrates the construction on a 7-node, 11-link network
//! with `Λ = {λ1, λ2, λ3, λ4}` and a fixed per-link availability table.
//! This module reproduces that network exactly (0-indexed: paper node `i`
//! is `NodeId` `i − 1`, paper wavelength `λ_j` is [`Wavelength`]
//! `j − 1`), so the test suite can check the intermediate structures
//! (`Λ_in/Λ_out` sets, the `G_3` gadget including its *missing*
//! `λ2 → λ3` edge) against the paper's printed values.
//!
//! The paper specifies availability but no numeric costs, so costs here
//! are a documented choice: `w(e, λ) = 10 + link_index + 2·λ_index`
//! (deterministic, distinct, all ≥ 10) and conversions cost 1 wherever
//! allowed. Node 3 (our index 2) uses a matrix forbidding `λ2 → λ3`
//! (our `λ1 → λ2`), matching Fig. 3; every other node converts freely at
//! cost 1.

use crate::{ConversionMatrix, ConversionPolicy, Cost, Wavelength, WdmNetwork};
use wdm_graph::DiGraph;

/// The link table of Fig. 1/2: `(tail, head, available λ indices)`,
/// 0-indexed.
///
/// Link order matches the paper's listing, so `LinkId(i)` is the `i`-th
/// row.
pub const LINKS: [(usize, usize, &[usize]); 11] = [
    (0, 1, &[0, 2]),    // ⟨1,2⟩: λ1, λ3
    (0, 3, &[0, 1, 3]), // ⟨1,4⟩: λ1, λ2, λ4
    (1, 2, &[0, 3]),    // ⟨2,3⟩: λ1, λ4
    (1, 6, &[0, 1, 2]), // ⟨2,7⟩: λ1, λ2, λ3
    (2, 0, &[1, 2]),    // ⟨3,1⟩: λ2, λ3
    (2, 6, &[2, 3]),    // ⟨3,7⟩: λ3, λ4
    (3, 4, &[2]),       // ⟨4,5⟩: λ3
    (4, 2, &[1, 3]),    // ⟨5,3⟩: λ2, λ4
    (4, 5, &[0, 2]),    // ⟨5,6⟩: λ1, λ3
    (5, 3, &[1, 2]),    // ⟨6,4⟩: λ2, λ3
    (5, 6, &[1, 2, 3]), // ⟨6,7⟩: λ2, λ3, λ4
];

/// Number of wavelengths in the example (`k = 4`).
pub const K: usize = 4;

/// Deterministic link cost used by this module:
/// `w(e, λ) = 10 + link_index + 2·λ_index`.
pub fn link_cost(link_index: usize, lambda_index: usize) -> u64 {
    10 + link_index as u64 + 2 * lambda_index as u64
}

/// Builds the Fig. 1 network.
///
/// # Examples
///
/// ```
/// use wdm_core::paper_example;
///
/// let net = paper_example::network();
/// assert_eq!(net.node_count(), 7);
/// assert_eq!(net.link_count(), 11);
/// assert_eq!(net.k(), 4);
/// // Paper: Λ_out(G_M, 7) = ∅ (node 7 has no outgoing links).
/// assert!(net.lambda_out(6.into()).is_empty());
/// ```
pub fn network() -> WdmNetwork {
    let g = DiGraph::from_links(7, LINKS.iter().map(|&(u, v, _)| (u, v)));
    let mut builder = WdmNetwork::builder(g, K);
    for (i, &(_, _, lambdas)) in LINKS.iter().enumerate() {
        let entries: Vec<(usize, u64)> = lambdas.iter().map(|&l| (l, link_cost(i, l))).collect();
        builder = builder.link_wavelengths(i, entries);
    }
    // All nodes convert at cost 1...
    for v in 0..7 {
        builder = builder.conversion(v, ConversionPolicy::Uniform(Cost::new(1)));
    }
    // ...except node 3 (index 2), whose Fig. 3 gadget lacks the
    // (3, λ2) → (3, λ3) edge: forbid exactly that pair.
    let mut m = ConversionMatrix::uniform(K, Cost::new(1));
    m.set(Wavelength::new(1), Wavelength::new(2), Cost::INFINITY);
    builder = builder.conversion(2, ConversionPolicy::Matrix(m));
    match builder.build() {
        Ok(network) => network,
        Err(_) => unreachable!("the paper example is a valid instance"),
    }
}

/// The paper's `Λ_in(G_M, v)` table (0-indexed wavelengths), in node
/// order 1–7.
pub const LAMBDA_IN: [&[usize]; 7] = [
    &[1, 2],       // node 1: {λ2, λ3}
    &[0, 2],       // node 2: {λ1, λ3}
    &[0, 1, 3],    // node 3: {λ1, λ2, λ4}
    &[0, 1, 2, 3], // node 4: {λ1, λ2, λ3, λ4}
    &[2],          // node 5: {λ3}
    &[0, 2],       // node 6: {λ1, λ3}
    &[0, 1, 2, 3], // node 7: {λ1, λ2, λ3, λ4}
];

/// The paper's `Λ_out(G_M, v)` table (0-indexed wavelengths), in node
/// order 1–7.
pub const LAMBDA_OUT: [&[usize]; 7] = [
    &[0, 1, 2, 3], // node 1: {λ1, λ2, λ3, λ4}
    &[0, 1, 2, 3], // node 2: {λ1, λ2, λ3, λ4} — see note below
    &[1, 2, 3],    // node 3: {λ2, λ3, λ4}
    &[2],          // node 4: {λ3}
    &[0, 1, 2, 3], // node 5: {λ1, λ2, λ3, λ4}
    &[1, 2, 3],    // node 6: {λ2, λ3, λ4}
    &[],           // node 7: ∅
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuxiliaryGraph, LiangShenRouter};
    use wdm_graph::NodeId;

    #[test]
    fn availability_matches_figure_1() {
        let net = network();
        for (i, &(u, v, lambdas)) in LINKS.iter().enumerate() {
            let link = wdm_graph::LinkId::new(i);
            let l = net.graph().link(link);
            assert_eq!((l.tail().index(), l.head().index()), (u, v));
            let have: Vec<usize> = net
                .wavelengths_on(link)
                .iter()
                .map(|(w, _)| w.index())
                .collect();
            assert_eq!(have, lambdas, "link {i}");
        }
    }

    #[test]
    fn lambda_sets_match_paper_listing() {
        // Note: the paper prints Λ_out(G_M, 2) = {λ1, λ2, λ4}, but links
        // ⟨2,3⟩ = {λ1, λ4} and ⟨2,7⟩ = {λ1, λ2, λ3} union to
        // {λ1, λ2, λ3, λ4}; the printed set omits λ3, an apparent typo in
        // the paper. We assert the set computed from Fig. 1's availability
        // table.
        let net = network();
        for v in 0..7 {
            let node = NodeId::new(v);
            let lin: Vec<usize> = net.lambda_in(node).iter().map(|w| w.index()).collect();
            let lout: Vec<usize> = net.lambda_out(node).iter().map(|w| w.index()).collect();
            assert_eq!(lin, LAMBDA_IN[v], "Λ_in node {}", v + 1);
            assert_eq!(lout, LAMBDA_OUT[v], "Λ_out node {}", v + 1);
        }
    }

    #[test]
    fn g3_gadget_misses_the_forbidden_edge() {
        // Fig. 3: at node 3 there is no edge (3, λ2) → (3, λ3).
        let net = network();
        let aux = AuxiliaryGraph::core(&net);
        let node3 = NodeId::new(2);
        let x = aux
            .in_node(node3, Wavelength::new(1))
            .expect("λ2 ∈ Λ_in(3)");
        let forbidden_target = aux
            .out_node(node3, Wavelength::new(2))
            .expect("λ3 ∈ Λ_out(3)");
        assert!(
            aux.graph()
                .out_edges(x)
                .all(|e| e.target != forbidden_target),
            "λ2 → λ3 must be absent at node 3"
        );
        // But λ2 → λ2 pass-through exists... λ2 ∈ Λ_out(3)? Yes ({λ2,λ3,λ4}).
        let same = aux
            .out_node(node3, Wavelength::new(1))
            .expect("λ2 ∈ Λ_out(3)");
        assert!(aux.graph().out_edges(x).any(|e| e.target == same));
        // And λ2 → λ4 is allowed at cost 1.
        let l4 = aux.out_node(node3, Wavelength::new(3)).expect("λ4");
        let edge = aux
            .graph()
            .out_edges(x)
            .find(|e| e.target == l4)
            .expect("λ2 → λ4 present");
        assert_eq!(edge.cost, Cost::new(1));
    }

    #[test]
    fn gadget_sizes_respect_observation_1() {
        let net = network();
        let aux = AuxiliaryGraph::core(&net);
        for v in 0..7 {
            let node = NodeId::new(v);
            let xy = aux.x_len(node) + aux.y_len(node);
            assert!(xy <= 2 * K, "|X_v| + |Y_v| ≤ 2k at node {}", v + 1);
        }
        aux.stats().check_paper_bounds().expect("observations hold");
    }

    #[test]
    fn routes_on_the_example_are_optimal_and_valid() {
        let net = network();
        let router = LiangShenRouter::new();
        // Node 7 (index 6) is the only sink; route from every other node.
        for s in 0..6 {
            let r = router
                .route(&net, NodeId::new(s), NodeId::new(6))
                .expect("in range");
            let p = r.path.unwrap_or_else(|| panic!("{} → 7 reachable", s + 1));
            p.validate(&net).expect("valid");
            // Cross-check with the independent state-space oracle. (The
            // CFZ baseline is not a valid oracle here: node 3's matrix is
            // chain-inconsistent — see the caveat in `cfz`.)
            let b = crate::reference::reference_route(&net, NodeId::new(s), NodeId::new(6))
                .expect("in range")
                .expect("reachable");
            assert_eq!(p.cost(), b.cost(), "source {}", s + 1);
        }
    }

    #[test]
    fn node_7_cannot_reach_anyone() {
        let net = network();
        let router = LiangShenRouter::new();
        for t in 0..6 {
            let r = router
                .route(&net, NodeId::new(6), NodeId::new(t))
                .expect("in range");
            assert!(r.path.is_none(), "7 → {} must be unreachable", t + 1);
        }
    }

    #[test]
    fn link_cost_formula_is_stable() {
        assert_eq!(link_cost(0, 0), 10);
        assert_eq!(link_cost(3, 2), 17);
        let net = network();
        assert_eq!(
            net.link_cost(wdm_graph::LinkId::new(3), Wavelength::new(2)),
            Cost::new(17)
        );
    }
}
