//! Optimal lightpath/semilightpath routing in WDM networks.
//!
//! This crate reproduces the algorithmic contribution of Liang & Shen,
//! *Improved Lightpath (Wavelength) Routing in Large WDM Networks*: finding
//! a minimum-cost transmission path between two nodes of a
//! wavelength-division-multiplexed optical network, where the cost counts
//! both per-wavelength link traversals `w(e, λ)` and wavelength conversions
//! `c_v(λp, λq)` at intermediate nodes (Equation 1 of the paper).
//!
//! # The model
//!
//! * [`WdmNetwork`] — a directed graph with per-link availability sets
//!   `Λ(e)`, per-(link, wavelength) costs, and per-node
//!   [`ConversionPolicy`] functions;
//! * [`Semilightpath`] — a link sequence with a wavelength assigned per
//!   link; a *lightpath* is the conversion-free special case.
//!
//! # The algorithms
//!
//! * [`LiangShenRouter`] — the paper's layered-graph algorithm
//!   (Theorem 1): builds the auxiliary graph `G_{s,t}`
//!   ([`AuxiliaryGraph`]) and runs Fibonacci-heap Dijkstra, in
//!   `O(k²n + km + kn·log(kn))`; also single-source trees and, with the
//!   Section-IV bounded-availability instances, the `k`-independent
//!   `O(d²nk0² + mk0·log n)` behaviour (Theorem 4) — the same code path,
//!   automatically faster because the construction only materializes
//!   wavelengths that occur.
//! * [`AllPairs`] — Corollary 1's all-pairs variant over `G_all`.
//! * [`CfzRouter`] — the Chlamtac–Faragó–Zhang baseline on the `kn`-node
//!   wavelength graph, as compared against in Section III-C.
//! * [`restrictions`] — Restrictions 1–2 and the Theorem-2 node-simplicity
//!   guarantee.
//!
//! # Quick start
//!
//! ```
//! use wdm_core::{find_optimal_semilightpath, ConversionPolicy, Cost, WdmNetwork};
//! use wdm_graph::DiGraph;
//!
//! // A 3-node chain where the wavelength must change at node 1.
//! let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
//! let net = WdmNetwork::builder(g, 2)
//!     .link_wavelengths(0, [(0, 10)])            // link 0 carries λ0 at cost 10
//!     .link_wavelengths(1, [(1, 20)])            // link 1 carries λ1 at cost 20
//!     .conversion(1, ConversionPolicy::Uniform(Cost::new(5)))
//!     .build()?;
//!
//! let path = find_optimal_semilightpath(&net, 0.into(), 2.into())?.expect("reachable");
//! assert_eq!(path.cost(), Cost::new(35)); // 10 + 5 (conversion) + 20
//! assert_eq!(path.conversion_count(), 1);
//! path.validate(&net)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod all_pairs;
/// Workload analytics (conversion placement, wavelength pressure) over
/// optimal routes.
pub mod analysis;
mod auxiliary;
mod cfz;
mod conversion;
mod cost;
/// Compressed-sparse-row auxiliary-graph storage and edge masks.
pub mod csr;
/// Dijkstra variants (heap-generic, workspace, masked) over CSR graphs.
pub mod dijkstra;
mod error;
/// Successive-shortest-path min-cost flow on auxiliary graphs.
pub mod flow;
/// Random instance generation for tests and experiments.
pub mod instance;
mod k_shortest;
mod liang_shen;
mod network;
/// The worked 7-node example instance from the paper (Fig. 1–2).
pub mod paper_example;
/// Independent state-space reference solver used as a test oracle.
pub mod reference;
mod residual;
/// Restriction 1/2 predicates gating the paper's fast paths.
pub mod restrictions;
mod route;
mod survivability;
/// Plain-text `.wdm` instance serialization.
pub mod textfmt;
mod wavelength;

pub use all_pairs::{AllPairs, AllPairsPaths};
pub use auxiliary::{AuxNodeKind, AuxStats, AuxiliaryGraph};
pub use cfz::CfzRouter;
pub use conversion::{ConversionMatrix, ConversionPolicy};
pub use cost::Cost;
pub use dijkstra::{
    dijkstra, dijkstra_masked, dijkstra_with, DijkstraStats, SearchStats, ShortestPathTree,
};
pub use error::{RouteError, WdmError};
pub use k_shortest::k_shortest_semilightpaths;
pub use liang_shen::{find_optimal_semilightpath, LiangShenRouter, RouteResult, SemilightpathTree};
pub use network::{LinkWavelengths, WdmNetwork, WdmNetworkBuilder};
pub use residual::{AcquireOutcome, PersistentAuxGraph, ResidualState, SearchScratch};
pub use route::{Hop, Semilightpath};
pub use survivability::{disjoint_semilightpath_pair, DisjointPair, Disjointness};
pub use wavelength::{Wavelength, WavelengthSet};

// Re-export the heap selector so callers don't need a direct `heaps`
// dependency to configure routers.
pub use heaps::HeapKind;
