//! A plain-text instance format for WDM networks.
//!
//! Lets instances be saved, versioned, and shared between the examples,
//! the experiment harness, and external tools without pulling in a JSON
//! dependency. The format is line-based and human-editable:
//!
//! ```text
//! wdm v1
//! n 3
//! k 2
//! link 0 1 0:10,1:12
//! link 1 2 1:20
//! conv 1 uniform 5
//! conv 2 banded 2 1 3
//! conv 0 matrix 0>1:4,1>0:7
//! ```
//!
//! * `link <tail> <head> <λ:cost>[,<λ:cost>…]` — one line per directed
//!   link, in link-id order; an empty availability set is written as `-`.
//! * `conv <node> forbidden|free|uniform <c>|banded <radius> <base>
//!   <slope>|matrix <from>>\<to>:<cost>[,…]` — unlisted nodes default to
//!   `forbidden`; unlisted matrix pairs are forbidden.
//!
//! # Examples
//!
//! ```
//! use wdm_core::{textfmt, WdmNetwork};
//! use wdm_graph::DiGraph;
//!
//! let g = DiGraph::from_links(2, [(0, 1)]);
//! let net = WdmNetwork::builder(g, 2).link_wavelengths(0, [(0, 5)]).build()?;
//! let text = textfmt::to_text(&net);
//! let back = textfmt::from_text(&text)?;
//! assert_eq!(net, back);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{ConversionMatrix, ConversionPolicy, Cost, Wavelength, WdmNetwork};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use wdm_graph::DiGraph;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// Missing or wrong `wdm v1` header.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The parsed instance failed network validation.
    Invalid(crate::WdmError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `wdm v1` header"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<crate::WdmError> for ParseError {
    fn from(e: crate::WdmError) -> Self {
        ParseError::Invalid(e)
    }
}

/// The finite value of a cost the model guarantees finite (validated link
/// costs; conversion parameters, whose infinite cases serialize through
/// other branches).
fn finite(c: Cost) -> u64 {
    match c.value() {
        Some(v) => v,
        None => unreachable!("textfmt only serializes finite costs"),
    }
}

/// Serializes a network to the text format.
pub fn to_text(network: &WdmNetwork) -> String {
    let mut out = String::new();
    out.push_str("wdm v1\n");
    let _ = writeln!(out, "n {}", network.node_count());
    let _ = writeln!(out, "k {}", network.k());
    for (e, l) in network.graph().links() {
        let _ = write!(out, "link {} {} ", l.tail().index(), l.head().index());
        let lw = network.wavelengths_on(e);
        if lw.is_empty() {
            out.push('-');
        } else {
            let entries: Vec<String> = lw
                .iter()
                .map(|(w, c)| format!("{}:{}", w.index(), finite(c)))
                .collect();
            out.push_str(&entries.join(","));
        }
        out.push('\n');
    }
    for v in network.graph().nodes() {
        match network.conversion_at(v) {
            ConversionPolicy::Forbidden => {} // the default; omit
            ConversionPolicy::Free => {
                let _ = writeln!(out, "conv {} free", v.index());
            }
            ConversionPolicy::Uniform(c) => {
                let _ = writeln!(out, "conv {} uniform {}", v.index(), finite(*c));
            }
            ConversionPolicy::Banded {
                radius,
                base,
                slope,
            } => {
                let _ = writeln!(
                    out,
                    "conv {} banded {} {} {}",
                    v.index(),
                    radius,
                    finite(*base),
                    finite(*slope),
                );
            }
            ConversionPolicy::Matrix(m) => {
                let mut pairs = Vec::new();
                for p in 0..network.k() {
                    for q in 0..network.k() {
                        if p == q {
                            continue;
                        }
                        let c = m.cost(Wavelength::new(p), Wavelength::new(q));
                        if let Some(value) = c.value() {
                            pairs.push(format!("{p}>{q}:{value}"));
                        }
                    }
                }
                let body = if pairs.is_empty() {
                    "-".to_string()
                } else {
                    pairs.join(",")
                };
                let _ = writeln!(out, "conv {} matrix {}", v.index(), body);
            }
        }
    }
    out
}

/// Parses a network from the text format.
///
/// # Errors
///
/// [`ParseError`] describing the first offending line, or the network
/// validation failure.
pub fn from_text(text: &str) -> Result<WdmNetwork, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    if header != "wdm v1" {
        return Err(ParseError::BadHeader);
    }

    /// Parsed `link` line: `(tail, head, [(λ, cost)])`.
    type RawLink = (usize, usize, Vec<(usize, u64)>);
    let mut n: Option<usize> = None;
    let mut k: Option<usize> = None;
    let mut links: Vec<RawLink> = Vec::new();
    let mut convs: Vec<(usize, ConversionPolicy)> = Vec::new();

    for (line_no, line) in lines {
        let err = |reason: &str| ParseError::Malformed {
            line: line_no,
            reason: reason.to_string(),
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                n = Some(parse_num(parts.next(), line_no, "node count")?);
            }
            Some("k") => {
                k = Some(parse_num(parts.next(), line_no, "wavelength count")?);
            }
            Some("link") => {
                let tail: usize = parse_num(parts.next(), line_no, "link tail")?;
                let head: usize = parse_num(parts.next(), line_no, "link head")?;
                let spec = parts
                    .next()
                    .ok_or_else(|| err("missing availability list"))?;
                let mut entries = Vec::new();
                if spec != "-" {
                    for item in spec.split(',') {
                        let (l, c) = item
                            .split_once(':')
                            .ok_or_else(|| err("availability entry must be λ:cost"))?;
                        let l: usize = l.parse().map_err(|_| err("bad wavelength index"))?;
                        let c: u64 = c.parse().map_err(|_| err("bad cost"))?;
                        if l > u32::MAX as usize {
                            return Err(err("wavelength index too large"));
                        }
                        if c == u64::MAX {
                            return Err(err("cost value reserved for infinity"));
                        }
                        entries.push((l, c));
                    }
                }
                links.push((tail, head, entries));
            }
            Some("conv") => {
                let node: usize = parse_num(parts.next(), line_no, "conversion node")?;
                let kind = parts.next().ok_or_else(|| err("missing policy kind"))?;
                let policy = match kind {
                    "forbidden" => ConversionPolicy::Forbidden,
                    "free" => ConversionPolicy::Free,
                    "uniform" => {
                        let c: u64 = parse_num(parts.next(), line_no, "uniform cost")?;
                        if c == u64::MAX {
                            return Err(err("cost value reserved for infinity"));
                        }
                        ConversionPolicy::Uniform(Cost::new(c))
                    }
                    "banded" => {
                        let radius: usize = parse_num(parts.next(), line_no, "band radius")?;
                        let base: u64 = parse_num(parts.next(), line_no, "band base")?;
                        let slope: u64 = parse_num(parts.next(), line_no, "band slope")?;
                        if base == u64::MAX || slope == u64::MAX {
                            return Err(err("cost value reserved for infinity"));
                        }
                        ConversionPolicy::Banded {
                            radius,
                            base: Cost::new(base),
                            slope: Cost::new(slope),
                        }
                    }
                    "matrix" => {
                        let k = k.ok_or_else(|| err("matrix before `k` line"))?;
                        let mut m = ConversionMatrix::forbidden(k);
                        let body = parts.next().ok_or_else(|| err("missing matrix body"))?;
                        if body != "-" {
                            for item in body.split(',') {
                                let (pair, c) = item
                                    .split_once(':')
                                    .ok_or_else(|| err("matrix entry must be p>q:cost"))?;
                                let (p, q) = pair
                                    .split_once('>')
                                    .ok_or_else(|| err("matrix pair must be p>q"))?;
                                let p: usize = p.parse().map_err(|_| err("bad from-λ"))?;
                                let q: usize = q.parse().map_err(|_| err("bad to-λ"))?;
                                let c: u64 = c.parse().map_err(|_| err("bad matrix cost"))?;
                                if p >= k || q >= k {
                                    return Err(err("matrix wavelength out of range"));
                                }
                                if c == u64::MAX {
                                    return Err(err("cost value reserved for infinity"));
                                }
                                if p == q {
                                    return Err(err("matrix diagonal is fixed at zero"));
                                }
                                m.set(Wavelength::new(p), Wavelength::new(q), Cost::new(c));
                            }
                        }
                        ConversionPolicy::Matrix(m)
                    }
                    other => return Err(err(&format!("unknown policy kind `{other}`"))),
                };
                convs.push((node, policy));
            }
            Some(other) => {
                return Err(err(&format!("unknown directive `{other}`")));
            }
            None => unreachable!("blank lines are filtered"),
        }
    }

    let n = n.ok_or(ParseError::Malformed {
        line: 0,
        reason: "missing `n` line".to_string(),
    })?;
    let k = k.ok_or(ParseError::Malformed {
        line: 0,
        reason: "missing `k` line".to_string(),
    })?;
    const LIMIT: usize = 1 << 26;
    if n > LIMIT || k > LIMIT {
        return Err(ParseError::Malformed {
            line: 0,
            reason: format!("instance size out of supported range (n = {n}, k = {k})"),
        });
    }

    for &(tail, head, _) in &links {
        if tail >= n || head >= n {
            return Err(ParseError::Malformed {
                line: 0,
                reason: format!("link endpoint {tail}/{head} out of range for n = {n}"),
            });
        }
    }
    let graph = DiGraph::from_links(n, links.iter().map(|&(t, h, _)| (t, h)));
    let mut builder = WdmNetwork::builder(graph, k);
    for (i, (_, _, entries)) in links.into_iter().enumerate() {
        builder = builder.link_wavelengths(i, entries);
    }
    for (node, policy) in convs {
        if node >= n {
            return Err(ParseError::Malformed {
                line: 0,
                reason: format!("conversion node {node} out of range for n = {n}"),
            });
        }
        builder = builder.conversion(node, policy);
    }
    Ok(builder.build()?)
}

fn parse_num<T: std::str::FromStr>(
    token: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    token
        .ok_or_else(|| ParseError::Malformed {
            line,
            reason: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseError::Malformed {
            line,
            reason: format!("bad {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdm_graph::topology;

    #[test]
    fn round_trips_every_policy_kind() {
        let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut m = ConversionMatrix::forbidden(3);
        m.set(Wavelength::new(0), Wavelength::new(2), Cost::new(9));
        let net = WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(0, 5), (2, 7)])
            .link_wavelengths(1, [(1, 6)])
            // link 2 left empty
            .link_wavelengths(3, [(0, 1), (1, 2), (2, 3)])
            .conversion(0, ConversionPolicy::Free)
            .conversion(1, ConversionPolicy::Uniform(Cost::new(4)))
            .conversion(
                2,
                ConversionPolicy::Banded {
                    radius: 1,
                    base: Cost::new(2),
                    slope: Cost::new(3),
                },
            )
            .conversion(3, ConversionPolicy::Matrix(m))
            .build()
            .expect("valid");
        let text = to_text(&net);
        let back = from_text(&text).expect("parses");
        assert_eq!(net, back);
    }

    #[test]
    fn round_trips_random_instances() {
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let net = random_network(
                topology::nsfnet(),
                &InstanceConfig {
                    k: 5,
                    availability: Availability::Probability(0.5),
                    link_cost: (1, 50),
                    conversion: ConversionSpec::RandomMatrix {
                        density: 0.4,
                        lo: 1,
                        hi: 9,
                    },
                },
                &mut rng,
            )
            .expect("valid");
            let back = from_text(&to_text(&net)).expect("parses");
            assert_eq!(net, back, "seed {seed}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "wdm v1\n# comment\n\nn 2\nk 1\nlink 0 1 0:3\n";
        let net = from_text(text).expect("parses");
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.link_cost(0.into(), Wavelength::new(0)), Cost::new(3));
    }

    #[test]
    fn header_is_required() {
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
        assert_eq!(from_text("wdm v2\nn 1\nk 1\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn malformed_lines_report_numbers() {
        let text = "wdm v1\nn 2\nk 1\nlink 0 nope 0:3\n";
        match from_text(text) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected malformed, got {other:?}"),
        }
        let text = "wdm v1\nn 2\nk 1\nfrobnicate\n";
        assert!(matches!(
            from_text(text),
            Err(ParseError::Malformed { line: 4, .. })
        ));
    }

    #[test]
    fn out_of_range_references_are_rejected() {
        let text = "wdm v1\nn 2\nk 1\nlink 0 5 0:3\n";
        assert!(matches!(from_text(text), Err(ParseError::Malformed { .. })));
        let text = "wdm v1\nn 2\nk 1\nconv 9 free\n";
        assert!(matches!(from_text(text), Err(ParseError::Malformed { .. })));
        // Wavelength beyond k caught by network validation.
        let text = "wdm v1\nn 2\nk 1\nlink 0 1 5:3\n";
        assert!(matches!(from_text(text), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn empty_availability_round_trips() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 2).build().expect("valid");
        let text = to_text(&net);
        assert!(text.contains("link 0 1 -"));
        assert_eq!(from_text(&text).expect("parses"), net);
    }

    #[test]
    fn paper_example_round_trips() {
        let net = crate::paper_example::network();
        let back = from_text(&to_text(&net)).expect("parses");
        assert_eq!(net, back);
    }
}
