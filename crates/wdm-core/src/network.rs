//! The WDM network instance: graph + wavelength availability + cost
//! structure.

use crate::{ConversionPolicy, Cost, Wavelength, WavelengthSet, WdmError};
use serde::{Deserialize, Serialize};
use wdm_graph::{DiGraph, LinkId, NodeId};

/// The wavelengths available on one link, with their traversal costs.
///
/// This is the paper's `Λ(e)` together with `w(e, λ)` for `λ ∈ Λ(e)`;
/// wavelengths not listed have `w(e, λ) = ∞`. Entries are kept sorted by
/// wavelength.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LinkWavelengths {
    entries: Vec<(Wavelength, Cost)>,
}

impl LinkWavelengths {
    /// Builds from `(wavelength, cost)` pairs; sorts by wavelength.
    fn from_entries(mut entries: Vec<(Wavelength, Cost)>) -> Self {
        entries.sort_by_key(|&(w, _)| w);
        LinkWavelengths { entries }
    }

    /// Number of available wavelengths `|Λ(e)|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no wavelength is available on the link.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(λ, w(e, λ))` in increasing wavelength order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Wavelength, Cost)> + '_ {
        self.entries.iter().copied()
    }

    /// The traversal cost `w(e, λ)`, or [`Cost::INFINITY`] if `λ ∉ Λ(e)`.
    pub fn cost(&self, wavelength: Wavelength) -> Cost {
        match self.entries.binary_search_by_key(&wavelength, |&(w, _)| w) {
            Ok(i) => self.entries[i].1,
            Err(_) => Cost::INFINITY,
        }
    }

    /// Membership test `λ ∈ Λ(e)`.
    pub fn contains(&self, wavelength: Wavelength) -> bool {
        self.cost(wavelength).is_finite()
    }
}

/// A complete WDM network instance `(G, Λ, w, c)`.
///
/// Combines the physical directed graph, the global wavelength count `k`,
/// the per-link availability sets `Λ(e)` with costs `w(e, λ)`, and the
/// per-node conversion functions `c_v`. Instances are immutable once built;
/// construct them through [`WdmNetworkBuilder`].
///
/// # Examples
///
/// ```
/// use wdm_core::{Cost, ConversionPolicy, WdmNetwork, Wavelength};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 5)])
///     .link_wavelengths(1, [(1, 7)])
///     .conversion(1, ConversionPolicy::Uniform(Cost::new(1)))
///     .build()?;
/// assert_eq!(net.k(), 2);
/// assert_eq!(net.wavelengths_on(0.into()).len(), 1);
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WdmNetwork {
    graph: DiGraph,
    k: usize,
    links: Vec<LinkWavelengths>,
    conversion: Vec<ConversionPolicy>,
}

impl WdmNetwork {
    /// Starts building a network over `graph` with `k` wavelengths.
    pub fn builder(graph: DiGraph, k: usize) -> WdmNetworkBuilder {
        WdmNetworkBuilder::new(graph, k)
    }

    /// The physical graph `G`.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links `m`.
    pub fn link_count(&self) -> usize {
        self.graph.link_count()
    }

    /// The global wavelength count `k = |Λ|`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The paper's `k0`: the maximum `|Λ(e)|` over all links
    /// (0 for a linkless network).
    pub fn k0(&self) -> usize {
        self.links
            .iter()
            .map(LinkWavelengths::len)
            .max()
            .unwrap_or(0)
    }

    /// Total number of (link, wavelength) pairs
    /// `m₁ = Σ_e |Λ(e)|` — the size of the multigraph `G_M`'s link set.
    pub fn multigraph_link_count(&self) -> usize {
        self.links.iter().map(LinkWavelengths::len).sum()
    }

    /// The availability/cost table of one link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn wavelengths_on(&self, link: LinkId) -> &LinkWavelengths {
        &self.links[link.index()]
    }

    /// Traversal cost `w(e, λ)` (∞ when unavailable).
    pub fn link_cost(&self, link: LinkId, wavelength: Wavelength) -> Cost {
        self.links[link.index()].cost(wavelength)
    }

    /// The conversion policy of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn conversion_at(&self, node: NodeId) -> &ConversionPolicy {
        &self.conversion[node.index()]
    }

    /// Replaces the conversion policy of one node, returning the
    /// previous policy.
    ///
    /// This is the runtime converter-placement mutation: the network's
    /// topology and link wavelengths are immutable after
    /// [`build`](WdmNetworkBuilder::build), but conversion capability
    /// may be added or removed at a node (e.g. by a sparse-converter
    /// placer). Structures derived from this network — auxiliary
    /// graphs, residual states — bake conversion gadgets in at
    /// construction and must be rebuilt after this call.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_conversion_at(
        &mut self,
        node: NodeId,
        policy: ConversionPolicy,
    ) -> ConversionPolicy {
        std::mem::replace(&mut self.conversion[node.index()], policy)
    }

    /// Conversion cost `c_v(from, to)` at `node`.
    pub fn conversion_cost(&self, node: NodeId, from: Wavelength, to: Wavelength) -> Cost {
        self.conversion[node.index()].cost(from, to)
    }

    /// The paper's `Λ_in(G_M, v)`: wavelengths carried by some incoming
    /// link of `v`.
    pub fn lambda_in(&self, v: NodeId) -> WavelengthSet {
        let mut s = WavelengthSet::empty(self.k);
        for &e in self.graph.in_links(v) {
            for (w, _) in self.links[e.index()].iter() {
                s.insert(w);
            }
        }
        s
    }

    /// The paper's `Λ_out(G_M, v)`: wavelengths carried by some outgoing
    /// link of `v`.
    pub fn lambda_out(&self, v: NodeId) -> WavelengthSet {
        let mut s = WavelengthSet::empty(self.k);
        for &e in self.graph.out_links(v) {
            for (w, _) in self.links[e.index()].iter() {
                s.insert(w);
            }
        }
        s
    }

    /// The cheapest link cost `min { w(e, λ) }` over all links and
    /// available wavelengths, or `None` for a network without any
    /// (link, wavelength) pair. Used by Restriction 2.
    pub fn min_link_cost(&self) -> Option<Cost> {
        self.links
            .iter()
            .flat_map(|lw| lw.iter().map(|(_, c)| c))
            .min()
    }

    /// A copy of this network keeping only the (link, wavelength) pairs
    /// for which `keep` returns `true` (topology, costs, and conversion
    /// policies are preserved).
    ///
    /// This is the residual-network operation used by provisioning
    /// engines (drop busy resources) and protection heuristics (drop a
    /// primary path's links).
    ///
    /// # Examples
    ///
    /// ```
    /// use wdm_core::{Wavelength, WdmNetwork};
    /// use wdm_graph::DiGraph;
    ///
    /// let g = DiGraph::from_links(2, [(0, 1)]);
    /// let net = WdmNetwork::builder(g, 2)
    ///     .link_wavelengths(0, [(0, 5), (1, 7)])
    ///     .build()?;
    /// let only_l1 = net.restrict(|_, w| w == Wavelength::new(1));
    /// assert_eq!(only_l1.wavelengths_on(0.into()).len(), 1);
    /// assert_eq!(only_l1.k(), 2); // universe unchanged
    /// # Ok::<(), wdm_core::WdmError>(())
    /// ```
    pub fn restrict<F>(&self, mut keep: F) -> WdmNetwork
    where
        F: FnMut(LinkId, Wavelength) -> bool,
    {
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(i, lw)| {
                let link = LinkId::new(i);
                LinkWavelengths {
                    entries: lw.iter().filter(|&(w, _)| keep(link, w)).collect(),
                }
            })
            .collect();
        WdmNetwork {
            graph: self.graph.clone(),
            k: self.k,
            links,
            conversion: self.conversion.clone(),
        }
    }
}

/// Incremental builder for [`WdmNetwork`].
///
/// Links start with *no* available wavelengths and nodes with
/// [`ConversionPolicy::Forbidden`]; set what the instance needs and call
/// [`WdmNetworkBuilder::build`].
#[derive(Debug, Clone)]
pub struct WdmNetworkBuilder {
    graph: DiGraph,
    k: usize,
    links: Vec<Vec<(Wavelength, Cost)>>,
    conversion: Vec<ConversionPolicy>,
    error: Option<WdmError>,
}

impl WdmNetworkBuilder {
    /// Creates a builder over `graph` with `k` wavelengths.
    pub fn new(graph: DiGraph, k: usize) -> Self {
        let m = graph.link_count();
        let n = graph.node_count();
        WdmNetworkBuilder {
            graph,
            k,
            links: vec![Vec::new(); m],
            conversion: vec![ConversionPolicy::Forbidden; n],
            error: None,
        }
    }

    /// Declares the wavelengths available on `link` with their costs,
    /// replacing any previous declaration. Costs are plain integers for
    /// convenience.
    pub fn link_wavelengths<L, I>(mut self, link: L, entries: I) -> Self
    where
        L: Into<LinkId>,
        I: IntoIterator<Item = (usize, u64)>,
    {
        let link = link.into();
        if link.index() >= self.links.len() {
            self.error.get_or_insert(WdmError::LinkOutOfRange {
                link,
                m: self.links.len(),
            });
            return self;
        }
        self.links[link.index()] = entries
            .into_iter()
            .map(|(w, c)| (Wavelength::new(w), Cost::new(c)))
            .collect();
        self
    }

    /// Declares the wavelengths on `link` using typed entries.
    pub fn link_wavelengths_typed<L>(mut self, link: L, entries: Vec<(Wavelength, Cost)>) -> Self
    where
        L: Into<LinkId>,
    {
        let link = link.into();
        if link.index() >= self.links.len() {
            self.error.get_or_insert(WdmError::LinkOutOfRange {
                link,
                m: self.links.len(),
            });
            return self;
        }
        self.links[link.index()] = entries;
        self
    }

    /// Sets the conversion policy of `node`.
    pub fn conversion<N: Into<NodeId>>(mut self, node: N, policy: ConversionPolicy) -> Self {
        let node = node.into();
        if node.index() >= self.conversion.len() {
            self.error.get_or_insert(WdmError::NodeOutOfRange {
                node,
                n: self.conversion.len(),
            });
            return self;
        }
        self.conversion[node.index()] = policy;
        self
    }

    /// Sets the same conversion policy on every node.
    pub fn uniform_conversion(mut self, policy: ConversionPolicy) -> Self {
        for slot in &mut self.conversion {
            *slot = policy.clone();
        }
        self
    }

    /// Validates and produces the immutable network.
    ///
    /// # Errors
    ///
    /// * [`WdmError::NoWavelengths`] if `k == 0`;
    /// * [`WdmError::WavelengthOutOfRange`] if any link declares `λ >= k`;
    /// * [`WdmError::DuplicateWavelength`] if a link declares a wavelength
    ///   twice;
    /// * [`WdmError::LinkOutOfRange`] / [`WdmError::NodeOutOfRange`] if an
    ///   earlier builder call referenced a missing link/node.
    pub fn build(self) -> Result<WdmNetwork, WdmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.k == 0 {
            return Err(WdmError::NoWavelengths);
        }
        let mut links = Vec::with_capacity(self.links.len());
        for (i, raw) in self.links.into_iter().enumerate() {
            let link = LinkId::new(i);
            let mut seen = WavelengthSet::empty(self.k);
            for &(w, _) in &raw {
                if w.index() >= self.k {
                    return Err(WdmError::WavelengthOutOfRange {
                        wavelength: w,
                        k: self.k,
                    });
                }
                if !seen.insert(w) {
                    return Err(WdmError::DuplicateWavelength {
                        link,
                        wavelength: w,
                    });
                }
            }
            links.push(LinkWavelengths::from_entries(raw));
        }
        Ok(WdmNetwork {
            graph: self.graph,
            k: self.k,
            links,
            conversion: self.conversion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_graph() -> DiGraph {
        DiGraph::from_links(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn builder_produces_consistent_network() {
        let net = WdmNetwork::builder(simple_graph(), 3)
            .link_wavelengths(0, [(0, 10), (2, 20)])
            .link_wavelengths(1, [(1, 5)])
            .conversion(1, ConversionPolicy::Free)
            .build()
            .expect("valid");
        assert_eq!(net.k(), 3);
        assert_eq!(net.k0(), 2);
        assert_eq!(net.multigraph_link_count(), 3);
        assert_eq!(
            net.link_cost(LinkId::new(0), Wavelength::new(0)),
            Cost::new(10)
        );
        assert_eq!(
            net.link_cost(LinkId::new(0), Wavelength::new(1)),
            Cost::INFINITY
        );
        assert_eq!(net.min_link_cost(), Some(Cost::new(5)));
    }

    #[test]
    fn entries_are_sorted_regardless_of_input_order() {
        let net = WdmNetwork::builder(simple_graph(), 4)
            .link_wavelengths(0, [(3, 1), (0, 2), (2, 3)])
            .build()
            .expect("valid");
        let order: Vec<usize> = net
            .wavelengths_on(LinkId::new(0))
            .iter()
            .map(|(w, _)| w.index())
            .collect();
        assert_eq!(order, vec![0, 2, 3]);
    }

    #[test]
    fn lambda_in_and_out() {
        // links: 0: 0→1 {λ0}, 1: 1→2 {λ1}, 2: 2→0 {λ0, λ2}
        let net = WdmNetwork::builder(simple_graph(), 3)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            .link_wavelengths(2, [(0, 1), (2, 1)])
            .build()
            .expect("valid");
        let n1 = NodeId::new(1);
        let lin: Vec<usize> = net.lambda_in(n1).iter().map(|w| w.index()).collect();
        let lout: Vec<usize> = net.lambda_out(n1).iter().map(|w| w.index()).collect();
        assert_eq!(lin, vec![0]);
        assert_eq!(lout, vec![1]);
        let n0 = NodeId::new(0);
        let lin0: Vec<usize> = net.lambda_in(n0).iter().map(|w| w.index()).collect();
        assert_eq!(lin0, vec![0, 2]);
    }

    #[test]
    fn zero_wavelengths_rejected() {
        assert_eq!(
            WdmNetwork::builder(simple_graph(), 0).build().unwrap_err(),
            WdmError::NoWavelengths
        );
    }

    #[test]
    fn out_of_range_wavelength_rejected() {
        let err = WdmNetwork::builder(simple_graph(), 2)
            .link_wavelengths(0, [(5, 1)])
            .build()
            .unwrap_err();
        assert!(matches!(err, WdmError::WavelengthOutOfRange { .. }));
    }

    #[test]
    fn duplicate_wavelength_rejected() {
        let err = WdmNetwork::builder(simple_graph(), 2)
            .link_wavelengths(0, [(1, 1), (1, 2)])
            .build()
            .unwrap_err();
        assert!(matches!(err, WdmError::DuplicateWavelength { .. }));
    }

    #[test]
    fn bad_link_reference_rejected() {
        let err = WdmNetwork::builder(simple_graph(), 2)
            .link_wavelengths(9, [(0, 1)])
            .build()
            .unwrap_err();
        assert!(matches!(err, WdmError::LinkOutOfRange { .. }));
    }

    #[test]
    fn bad_node_reference_rejected() {
        let err = WdmNetwork::builder(simple_graph(), 2)
            .conversion(7, ConversionPolicy::Free)
            .build()
            .unwrap_err();
        assert!(matches!(err, WdmError::NodeOutOfRange { .. }));
    }

    #[test]
    fn uniform_conversion_applies_everywhere() {
        let net = WdmNetwork::builder(simple_graph(), 2)
            .uniform_conversion(ConversionPolicy::Free)
            .build()
            .expect("valid");
        for v in 0..3 {
            assert_eq!(*net.conversion_at(NodeId::new(v)), ConversionPolicy::Free);
        }
    }

    #[test]
    fn restrict_filters_resources_preserving_everything_else() {
        let net = WdmNetwork::builder(simple_graph(), 3)
            .link_wavelengths(0, [(0, 10), (1, 11), (2, 12)])
            .link_wavelengths(1, [(1, 5)])
            .conversion(1, ConversionPolicy::Free)
            .build()
            .expect("valid");
        // Drop λ1 everywhere.
        let r = net.restrict(|_, w| w.index() != 1);
        assert_eq!(r.k(), 3);
        assert_eq!(r.wavelengths_on(LinkId::new(0)).len(), 2);
        assert!(r.wavelengths_on(LinkId::new(1)).is_empty());
        assert_eq!(
            r.link_cost(LinkId::new(0), Wavelength::new(2)),
            Cost::new(12)
        );
        assert_eq!(*r.conversion_at(NodeId::new(1)), ConversionPolicy::Free);
        assert_eq!(r.graph().link_count(), net.graph().link_count());
        // Keep-everything restriction is the identity.
        assert_eq!(net.restrict(|_, _| true), net);
    }

    #[test]
    fn empty_links_allowed() {
        let net = WdmNetwork::builder(simple_graph(), 2)
            .build()
            .expect("valid");
        assert_eq!(net.k0(), 0);
        assert_eq!(net.multigraph_link_count(), 0);
        assert_eq!(net.min_link_cost(), None);
        assert!(net.wavelengths_on(LinkId::new(0)).is_empty());
    }
}
