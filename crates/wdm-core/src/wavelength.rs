//! Wavelength identifiers and wavelength sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A wavelength `λ_i` out of the network's set `Λ = {λ_0, …, λ_{k-1}}`.
///
/// Wavelengths are dense indices; the paper's 1-based `λ_1 … λ_k` maps to
/// `0 … k-1` here.
///
/// # Examples
///
/// ```
/// use wdm_core::Wavelength;
/// let l = Wavelength::new(2);
/// assert_eq!(l.index(), 2);
/// assert_eq!(l.to_string(), "λ2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Wavelength(u32);

impl Wavelength {
    /// Creates a wavelength from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit into `u32`.
    pub fn new(index: usize) -> Self {
        let Ok(raw) = u32::try_from(index) else {
            unreachable!("wavelength index {index} exceeds u32")
        };
        Wavelength(raw)
    }

    /// The dense index of this wavelength.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Absolute spectral distance `|p - q|`, used by banded converters.
    pub fn distance(self, other: Wavelength) -> usize {
        (self.0.max(other.0) - self.0.min(other.0)) as usize
    }
}

impl From<usize> for Wavelength {
    fn from(index: usize) -> Self {
        Wavelength::new(index)
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A set of wavelengths out of `Λ = 0..k`, stored as a bitset.
///
/// Used for the paper's per-link availability sets `Λ(e)` and the per-node
/// sets `Λ_in(G_M, v)` / `Λ_out(G_M, v)`.
///
/// # Examples
///
/// ```
/// use wdm_core::{Wavelength, WavelengthSet};
///
/// let mut s = WavelengthSet::empty(4);
/// s.insert(Wavelength::new(0));
/// s.insert(Wavelength::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(Wavelength::new(3)));
/// let t = WavelengthSet::from_indices(4, [1, 3]);
/// assert_eq!(s.intersection(&t).iter().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WavelengthSet {
    k: usize,
    blocks: Vec<u64>,
}

impl WavelengthSet {
    /// The empty set over a universe of `k` wavelengths.
    pub fn empty(k: usize) -> Self {
        WavelengthSet {
            k,
            blocks: vec![0; k.div_ceil(64)],
        }
    }

    /// The full set `Λ = {λ_0 … λ_{k-1}}`.
    pub fn full(k: usize) -> Self {
        let mut s = WavelengthSet::empty(k);
        for i in 0..k {
            s.insert(Wavelength::new(i));
        }
        s
    }

    /// Builds a set from wavelength indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= k`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(k: usize, indices: I) -> Self {
        let mut s = WavelengthSet::empty(k);
        for i in indices {
            s.insert(Wavelength::new(i));
        }
        s
    }

    /// The universe size `k`.
    pub fn universe(&self) -> usize {
        self.k
    }

    /// Inserts a wavelength; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `w.index() >= k`.
    pub fn insert(&mut self, w: Wavelength) -> bool {
        assert!(
            w.index() < self.k,
            "{w} outside universe of size {}",
            self.k
        );
        let (blk, bit) = (w.index() / 64, w.index() % 64);
        let was = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] |= 1 << bit;
        !was
    }

    /// Removes a wavelength; returns `true` if it was present.
    pub fn remove(&mut self, w: Wavelength) -> bool {
        if w.index() >= self.k {
            return false;
        }
        let (blk, bit) = (w.index() / 64, w.index() % 64);
        let was = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] &= !(1 << bit);
        was
    }

    /// Membership test.
    pub fn contains(&self, w: Wavelength) -> bool {
        w.index() < self.k && self.blocks[w.index() / 64] & (1 << (w.index() % 64)) != 0
    }

    /// Number of wavelengths in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Set union (universes must match).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &WavelengthSet) -> WavelengthSet {
        assert_eq!(self.k, other.k, "universe mismatch");
        WavelengthSet {
            k: self.k,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set intersection (universes must match).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &WavelengthSet) -> WavelengthSet {
        assert_eq!(self.k, other.k, "universe mismatch");
        WavelengthSet {
            k: self.k,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &WavelengthSet) {
        assert_eq!(self.k, other.k, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Iterates the wavelengths in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = Wavelength> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            (0..64).filter_map(move |bit| {
                if block & (1u64 << bit) != 0 {
                    Some(Wavelength::new(bi * 64 + bit))
                } else {
                    None
                }
            })
        })
    }
}

impl FromIterator<Wavelength> for WavelengthSet {
    /// Collects into a set whose universe is one past the largest index
    /// (empty iterator → empty universe).
    fn from_iter<I: IntoIterator<Item = Wavelength>>(iter: I) -> Self {
        let items: Vec<Wavelength> = iter.into_iter().collect();
        let k = items.iter().map(|w| w.index() + 1).max().unwrap_or(0);
        let mut s = WavelengthSet::empty(k);
        for w in items {
            s.insert(w);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = WavelengthSet::empty(130);
        assert!(s.insert(Wavelength::new(0)));
        assert!(s.insert(Wavelength::new(64)));
        assert!(s.insert(Wavelength::new(129)));
        assert!(!s.insert(Wavelength::new(129)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(Wavelength::new(64)));
        assert!(!s.contains(Wavelength::new(65)));
        assert!(s.remove(Wavelength::new(64)));
        assert!(!s.remove(Wavelength::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_set() {
        let s = WavelengthSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(Wavelength::new(69)));
        assert_eq!(s.iter().count(), 70);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = WavelengthSet::from_indices(100, [99, 0, 63, 64, 5]);
        let order: Vec<usize> = s.iter().map(|w| w.index()).collect();
        assert_eq!(order, vec![0, 5, 63, 64, 99]);
    }

    #[test]
    fn union_and_intersection() {
        let a = WavelengthSet::from_indices(10, [1, 3, 5]);
        let b = WavelengthSet::from_indices(10, [3, 5, 7]);
        let u = a.union(&b);
        let i = a.intersection(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(i.len(), 2);
        assert!(i.contains(Wavelength::new(3)));
        assert!(!i.contains(Wavelength::new(1)));
    }

    #[test]
    fn union_with_accumulates() {
        let mut acc = WavelengthSet::empty(8);
        acc.union_with(&WavelengthSet::from_indices(8, [1]));
        acc.union_with(&WavelengthSet::from_indices(8, [6]));
        assert_eq!(acc.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = WavelengthSet::empty(4);
        s.insert(Wavelength::new(4));
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: WavelengthSet = [Wavelength::new(2), Wavelength::new(7)]
            .into_iter()
            .collect();
        assert_eq!(s.universe(), 8);
        assert_eq!(s.len(), 2);
        let empty: WavelengthSet = std::iter::empty().collect();
        assert!(empty.is_empty());
        assert_eq!(empty.universe(), 0);
    }

    #[test]
    fn wavelength_distance() {
        assert_eq!(Wavelength::new(3).distance(Wavelength::new(7)), 4);
        assert_eq!(Wavelength::new(7).distance(Wavelength::new(3)), 4);
        assert_eq!(Wavelength::new(5).distance(Wavelength::new(5)), 0);
    }
}
