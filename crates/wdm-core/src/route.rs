//! Semilightpaths: routes with per-link wavelength assignments.

use crate::{Cost, RouteError, Wavelength, WdmNetwork};
use serde::{Deserialize, Serialize};
use wdm_graph::{LinkId, NodeId};

/// One step of a semilightpath: a link together with the wavelength the
/// path uses on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// The traversed link.
    pub link: LinkId,
    /// The wavelength assigned to the link, `λ(e) ∈ Λ(e)`.
    pub wavelength: Wavelength,
}

/// A semilightpath: a chain of [`Hop`]s plus its Equation-(1) cost.
///
/// Per the paper, a semilightpath is a link sequence `e_1 … e_l` with
/// `head(e_i) = tail(e_{i+1})` and an assigned wavelength per link; its
/// cost sums the link costs and the conversion costs at junctions where the
/// wavelength changes. A **lightpath** is the special case with no
/// conversions ([`Semilightpath::is_lightpath`]).
///
/// Values of this type are produced by the solvers; [`Semilightpath::validate`]
/// re-checks every model constraint against a network, which the test suite
/// uses as an end-to-end oracle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Semilightpath {
    hops: Vec<Hop>,
    cost: Cost,
}

impl Semilightpath {
    /// Creates a path from hops and a claimed cost (typically from a
    /// solver). Use [`Semilightpath::validate`] to check it against a
    /// network.
    pub fn new(hops: Vec<Hop>, cost: Cost) -> Self {
        Semilightpath { hops, cost }
    }

    /// The hops in travel order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of links on the path.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` for the empty path (source = destination).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The recorded path cost.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// The source node, if the path is non-empty.
    pub fn source(&self, network: &WdmNetwork) -> Option<NodeId> {
        self.hops
            .first()
            .map(|h| network.graph().link(h.link).tail())
    }

    /// The destination node, if the path is non-empty.
    pub fn target(&self, network: &WdmNetwork) -> Option<NodeId> {
        self.hops
            .last()
            .map(|h| network.graph().link(h.link).head())
    }

    /// The node sequence `tail(e_1), head(e_1), head(e_2), …` visited by
    /// the path (length `len() + 1`; empty for an empty path).
    pub fn node_sequence(&self, network: &WdmNetwork) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.hops.len() + 1);
        if let Some(first) = self.hops.first() {
            nodes.push(network.graph().link(first.link).tail());
        }
        for h in &self.hops {
            nodes.push(network.graph().link(h.link).head());
        }
        nodes
    }

    /// Number of wavelength conversions (junctions where the wavelength
    /// changes).
    pub fn conversion_count(&self) -> usize {
        self.hops
            .windows(2)
            .filter(|w| w[0].wavelength != w[1].wavelength)
            .count()
    }

    /// Returns `true` if the path uses a single wavelength end-to-end —
    /// i.e. it is a *lightpath* in the paper's terminology.
    pub fn is_lightpath(&self) -> bool {
        self.conversion_count() == 0
    }

    /// Splits the path into maximal single-wavelength segments (the
    /// constituent lightpaths that are chained by conversions).
    ///
    /// Each segment is a `(wavelength, hops)` pair; concatenating the hop
    /// slices yields the full path.
    pub fn lightpath_segments(&self) -> Vec<(Wavelength, &[Hop])> {
        let mut segments = Vec::new();
        let mut start = 0;
        for i in 1..=self.hops.len() {
            if i == self.hops.len() || self.hops[i].wavelength != self.hops[start].wavelength {
                segments.push((self.hops[start].wavelength, &self.hops[start..i]));
                start = i;
            }
        }
        segments
    }

    /// Recomputes the Equation-(1) cost of this hop sequence on `network`
    /// (∞ if some hop or conversion is unavailable).
    pub fn compute_cost(&self, network: &WdmNetwork) -> Cost {
        let mut total = Cost::ZERO;
        for (i, hop) in self.hops.iter().enumerate() {
            total += network.link_cost(hop.link, hop.wavelength);
            if i + 1 < self.hops.len() {
                let junction = network.graph().link(hop.link).head();
                total +=
                    network.conversion_cost(junction, hop.wavelength, self.hops[i + 1].wavelength);
            }
        }
        total
    }

    /// Checks every model constraint of this path against `network`:
    /// contiguity, wavelength availability, conversion feasibility, and
    /// that the recorded cost equals the Equation-(1) cost.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a [`RouteError`].
    pub fn validate(&self, network: &WdmNetwork) -> Result<(), RouteError> {
        for (i, pair) in self.hops.windows(2).enumerate() {
            let head = network.graph().link(pair[0].link).head();
            let tail = network.graph().link(pair[1].link).tail();
            if head != tail {
                return Err(RouteError::Discontiguous { at_hop: i });
            }
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if !network.wavelengths_on(hop.link).contains(hop.wavelength) {
                return Err(RouteError::WavelengthUnavailable {
                    at_hop: i,
                    link: hop.link,
                    wavelength: hop.wavelength,
                });
            }
        }
        for pair in self.hops.windows(2) {
            let junction = network.graph().link(pair[0].link).head();
            if network
                .conversion_cost(junction, pair[0].wavelength, pair[1].wavelength)
                .is_infinite()
            {
                return Err(RouteError::ConversionForbidden {
                    node: junction,
                    from: pair[0].wavelength,
                    to: pair[1].wavelength,
                });
            }
        }
        let actual = self.compute_cost(network);
        if actual != self.cost {
            return Err(RouteError::CostMismatch {
                recorded: self.cost,
                actual,
            });
        }
        Ok(())
    }

    /// Counts how many times each physical node is *entered* along the
    /// path (the Theorem-2 node-simplicity measure: a node-simple path
    /// enters every node at most once).
    pub fn node_visit_counts(&self, network: &WdmNetwork) -> Vec<usize> {
        let mut counts = vec![0usize; network.node_count()];
        let seq = self.node_sequence(network);
        for v in seq {
            counts[v.index()] += 1;
        }
        counts
    }

    /// Returns `true` if no physical node appears more than once in the
    /// node sequence (Theorem 2's conclusion under Restrictions 1 and 2).
    pub fn is_node_simple(&self, network: &WdmNetwork) -> bool {
        self.node_visit_counts(network).iter().all(|&c| c <= 1)
    }
}

impl std::fmt::Display for Semilightpath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hops.is_empty() {
            return write!(f, "(empty path, cost {})", self.cost);
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{}[{}]", hop.link, hop.wavelength)?;
        }
        write!(f, " (cost {})", self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConversionPolicy;
    use wdm_graph::DiGraph;

    /// 0 →(e0)→ 1 →(e1)→ 2, λ0 on e0, λ1 on e1; conversion free at node 1.
    fn chain_network() -> WdmNetwork {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(1, 20)])
            .conversion(1, ConversionPolicy::Uniform(Cost::new(5)))
            .build()
            .expect("valid")
    }

    fn hop(link: usize, w: usize) -> Hop {
        Hop {
            link: LinkId::new(link),
            wavelength: Wavelength::new(w),
        }
    }

    #[test]
    fn valid_path_passes_validation() {
        let net = chain_network();
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(35));
        p.validate(&net).expect("valid path");
        assert_eq!(p.conversion_count(), 1);
        assert!(!p.is_lightpath());
        assert_eq!(p.source(&net), Some(NodeId::new(0)));
        assert_eq!(p.target(&net), Some(NodeId::new(2)));
    }

    #[test]
    fn cost_mismatch_detected() {
        let net = chain_network();
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(30));
        assert!(matches!(
            p.validate(&net),
            Err(RouteError::CostMismatch { .. })
        ));
    }

    #[test]
    fn discontiguous_path_detected() {
        let g = DiGraph::from_links(4, [(0, 1), (2, 3)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(0, 1)])
            .build()
            .expect("valid");
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 0)], Cost::new(2));
        assert_eq!(
            p.validate(&net),
            Err(RouteError::Discontiguous { at_hop: 0 })
        );
    }

    #[test]
    fn unavailable_wavelength_detected() {
        let net = chain_network();
        let p = Semilightpath::new(vec![hop(0, 1)], Cost::new(10));
        assert!(matches!(
            p.validate(&net),
            Err(RouteError::WavelengthUnavailable { .. })
        ));
    }

    #[test]
    fn forbidden_conversion_detected() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            // node 1 has no converter
            .build()
            .expect("valid");
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(2));
        assert!(matches!(
            p.validate(&net),
            Err(RouteError::ConversionForbidden { .. })
        ));
    }

    #[test]
    fn lightpath_has_no_conversions() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 3)])
            .link_wavelengths(1, [(0, 4)])
            .build()
            .expect("valid");
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 0)], Cost::new(7));
        p.validate(&net).expect("valid");
        assert!(p.is_lightpath());
        assert_eq!(p.lightpath_segments().len(), 1);
    }

    #[test]
    fn segments_split_on_conversion() {
        let _net = chain_network();
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(35));
        let segs = p.lightpath_segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0, Wavelength::new(0));
        assert_eq!(segs[0].1.len(), 1);
        assert_eq!(segs[1].0, Wavelength::new(1));
    }

    #[test]
    fn node_sequence_and_simplicity() {
        let net = chain_network();
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(35));
        let seq: Vec<usize> = p.node_sequence(&net).iter().map(|v| v.index()).collect();
        assert_eq!(seq, vec![0, 1, 2]);
        assert!(p.is_node_simple(&net));
    }

    #[test]
    fn empty_path_display_and_flags() {
        let p = Semilightpath::new(vec![], Cost::ZERO);
        assert!(p.is_empty());
        assert!(p.is_lightpath());
        assert_eq!(p.to_string(), "(empty path, cost 0)");
        assert!(p.lightpath_segments().is_empty());
    }

    #[test]
    fn display_non_empty() {
        let p = Semilightpath::new(vec![hop(0, 0), hop(1, 1)], Cost::new(35));
        assert_eq!(p.to_string(), "e0[λ0] → e1[λ1] (cost 35)");
    }
}
