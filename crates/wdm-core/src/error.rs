//! Error types for network construction and routing.

use crate::{Cost, Wavelength};
use std::error::Error;
use std::fmt;
use wdm_graph::{LinkId, NodeId};

/// Errors produced while building a [`crate::WdmNetwork`] or posing a
/// routing query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WdmError {
    /// A wavelength index was `>= k`.
    WavelengthOutOfRange {
        /// The offending wavelength.
        wavelength: Wavelength,
        /// The network's wavelength count `k`.
        k: usize,
    },
    /// The same wavelength was assigned to a link twice.
    DuplicateWavelength {
        /// The link.
        link: LinkId,
        /// The duplicated wavelength.
        wavelength: Wavelength,
    },
    /// A link cost was the infinite sentinel (use omission instead).
    InfiniteLinkCost {
        /// The link.
        link: LinkId,
        /// The wavelength whose cost was infinite.
        wavelength: Wavelength,
    },
    /// A node id referred outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The graph's node count.
        n: usize,
    },
    /// A link id referred outside the graph.
    LinkOutOfRange {
        /// The offending link.
        link: LinkId,
        /// The graph's link count.
        m: usize,
    },
    /// The network must carry at least one wavelength (`k >= 1`).
    NoWavelengths,
}

impl fmt::Display for WdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdmError::WavelengthOutOfRange { wavelength, k } => {
                write!(f, "wavelength {wavelength} out of range for k = {k}")
            }
            WdmError::DuplicateWavelength { link, wavelength } => {
                write!(f, "wavelength {wavelength} assigned twice to link {link}")
            }
            WdmError::InfiniteLinkCost { link, wavelength } => write!(
                f,
                "link {link} has infinite cost on {wavelength}; omit the wavelength instead"
            ),
            WdmError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a graph with {n} nodes")
            }
            WdmError::LinkOutOfRange { link, m } => {
                write!(f, "link {link} out of range for a graph with {m} links")
            }
            WdmError::NoWavelengths => write!(f, "a WDM network needs at least one wavelength"),
        }
    }
}

impl Error for WdmError {}

/// Why a [`crate::Semilightpath`] failed validation against a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// Two consecutive hops do not share a node
    /// (`head(e_i) != tail(e_{i+1})`).
    Discontiguous {
        /// Index of the first hop of the offending pair.
        at_hop: usize,
    },
    /// A hop uses a wavelength that is not available on its link.
    WavelengthUnavailable {
        /// Index of the offending hop.
        at_hop: usize,
        /// The link.
        link: LinkId,
        /// The unavailable wavelength.
        wavelength: Wavelength,
    },
    /// A required wavelength conversion is forbidden at a junction node.
    ConversionForbidden {
        /// The junction node.
        node: NodeId,
        /// Wavelength arriving at the node.
        from: Wavelength,
        /// Wavelength leaving the node.
        to: Wavelength,
    },
    /// The recorded path cost does not equal the Equation-(1) cost.
    CostMismatch {
        /// Cost recorded on the path.
        recorded: Cost,
        /// Cost recomputed from the network.
        actual: Cost,
    },
    /// The path is empty but a non-trivial route was expected.
    Empty,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Discontiguous { at_hop } => {
                write!(f, "hops {at_hop} and {} do not share a node", at_hop + 1)
            }
            RouteError::WavelengthUnavailable {
                at_hop,
                link,
                wavelength,
            } => write!(
                f,
                "hop {at_hop} uses {wavelength} which is unavailable on link {link}"
            ),
            RouteError::ConversionForbidden { node, from, to } => {
                write!(f, "conversion {from} → {to} is forbidden at node {node}")
            }
            RouteError::CostMismatch { recorded, actual } => {
                write!(
                    f,
                    "recorded cost {recorded} but equation-(1) cost is {actual}"
                )
            }
            RouteError::Empty => write!(f, "path is empty"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_render() {
        let e = WdmError::WavelengthOutOfRange {
            wavelength: Wavelength::new(9),
            k: 4,
        };
        assert_eq!(e.to_string(), "wavelength λ9 out of range for k = 4");
        let e = RouteError::ConversionForbidden {
            node: NodeId::new(3),
            from: Wavelength::new(1),
            to: Wavelength::new(2),
        };
        assert_eq!(e.to_string(), "conversion λ1 → λ2 is forbidden at node v3");
    }
}
