//! Compact CSR edge storage shared by the auxiliary graphs.
//!
//! Both the paper's layered graph `G_{s,t}`/`G_all` and the CFZ baseline's
//! wavelength graph `WG` are "built once, searched once" structures, so they
//! share this compressed-sparse-row representation and a single Dijkstra
//! implementation ([`crate::dijkstra()`]).

use crate::{Cost, Wavelength};
use std::sync::atomic::{AtomicU64, AtomicUsize};
use wdm_graph::{LinkId, NodeId};
use wdm_obs::ordering::RELAXED;

/// What a search-graph edge means in terms of the physical network.
///
/// Carried as a parallel payload array so that a shortest path in the
/// search graph can be decoded back into a [`crate::Semilightpath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRole {
    /// A wavelength conversion inside a physical node.
    Conversion {
        /// The node performing the conversion.
        node: NodeId,
        /// Incoming wavelength `λp`.
        from: Wavelength,
        /// Outgoing wavelength `λq`.
        to: Wavelength,
    },
    /// Traversal of a physical link on a specific wavelength.
    Traversal {
        /// The physical link.
        link: LinkId,
        /// The wavelength used on it.
        wavelength: Wavelength,
    },
    /// A zero-cost attachment edge from/to a super-terminal
    /// (`s' → Y_s`, `X_t → t''`, or the `v'`/`v''` taps of `G_all`).
    Tap,
}

/// One outgoing edge as yielded by [`CsrGraph::out_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Dense index of this edge in the graph.
    pub index: usize,
    /// Head node of the edge.
    pub target: usize,
    /// Edge weight.
    pub cost: Cost,
    /// Physical meaning of the edge.
    pub role: EdgeRole,
}

/// A directed graph in compressed-sparse-row form with [`Cost`] weights and
/// [`EdgeRole`] payloads.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    costs: Vec<Cost>,
    roles: Vec<EdgeRole>,
    sources: Vec<u32>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Iterates the outgoing edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges(&self, node: usize) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        assert!(node + 1 < self.offsets.len(), "node {node} out of range");
        let range = self.offsets[node]..self.offsets[node + 1];
        range.map(move |i| EdgeRef {
            index: i,
            target: self.targets[i] as usize,
            cost: self.costs[i],
            role: self.roles[i],
        })
    }

    /// The edge with dense index `index`, as `(source, EdgeRef)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edge(&self, index: usize) -> (usize, EdgeRef) {
        (
            self.sources[index] as usize,
            EdgeRef {
                index,
                target: self.targets[index] as usize,
                cost: self.costs[index],
                role: self.roles[index],
            },
        )
    }

    /// Iterates the outgoing edges of `node`, skipping edges whose dense
    /// index is set in `mask`.
    ///
    /// This is the residual-capacity view of the graph: the structure is
    /// shared and immutable, only the mask changes between searches.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges_masked<'a>(
        &'a self,
        node: usize,
        mask: &'a EdgeMask,
    ) -> impl Iterator<Item = EdgeRef> + 'a {
        self.out_edges(node).filter(move |e| !mask.is_set(e.index))
    }
}

/// A bitmask over the dense edge indices of a [`CsrGraph`].
///
/// Set bits mark edges that are *excluded* from traversal (busy
/// wavelength-links in the residual view). Flipping a bit is `O(1)` and
/// allocation-free, which is what lets the provisioning engine keep one
/// persistent search graph instead of rebuilding it per request.
///
/// # Concurrency
///
/// The words are `AtomicU64`, so a mask may be shared across threads:
/// [`is_set`](Self::is_set) takes `&self` and the `fetch_set`/
/// `fetch_clear` pair flips bits through atomic RMWs. All accesses use
/// the relaxed ordering audited in `wdm_obs::ordering` — mask *bits*
/// never carry cross-thread consistency decisions on their own; the
/// concurrent engine layers a sharded seqlock on top (versions carry
/// the ordering), and single-threaded users see no atomics at all: the
/// `&mut self` methods ([`set`](Self::set), [`clear`](Self::clear),
/// [`set_to`](Self::set_to), [`clear_all`](Self::clear_all)) go through
/// `get_mut` and compile to the same plain word ops as before, so
/// single-threaded behaviour is bit-identical.
///
/// # Examples
///
/// ```
/// use wdm_core::csr::EdgeMask;
///
/// let mut mask = EdgeMask::all_clear(70);
/// assert!(mask.set(3));
/// assert!(!mask.set(3)); // already set
/// assert!(mask.is_set(3) && !mask.is_set(4));
/// assert_eq!(mask.set_count(), 1);
/// assert!(mask.clear(3));
/// assert_eq!(mask.set_count(), 0);
/// ```
#[derive(Debug)]
pub struct EdgeMask {
    bits: Vec<AtomicU64>,
    len: usize,
    set_count: AtomicUsize,
}

impl Clone for EdgeMask {
    fn clone(&self) -> Self {
        EdgeMask {
            bits: self
                .bits
                .iter()
                .map(|w| AtomicU64::new(w.load(RELAXED)))
                .collect(),
            len: self.len,
            set_count: AtomicUsize::new(self.set_count.load(RELAXED)),
        }
    }
}

impl PartialEq for EdgeMask {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .bits
                .iter()
                .zip(&other.bits)
                .all(|(a, b)| a.load(RELAXED) == b.load(RELAXED))
    }
}

impl Eq for EdgeMask {}

impl EdgeMask {
    /// A mask over `len` edges with every bit clear.
    pub fn all_clear(len: usize) -> Self {
        let mut bits = Vec::new();
        bits.resize_with(len.div_ceil(64), || AtomicU64::new(0));
        EdgeMask {
            bits,
            len,
            set_count: AtomicUsize::new(0),
        }
    }

    /// Number of edges the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mask covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (masked-out) bits.
    ///
    /// Exact whenever the mask is quiescent (no concurrent flips in
    /// flight); during concurrent mutation the count lags the individual
    /// bits by at most the number of in-flight flips.
    pub fn set_count(&self) -> usize {
        self.set_count.load(RELAXED)
    }

    /// Whether bit `index` is set.
    ///
    /// A relaxed atomic load — safe to call while other threads flip
    /// bits; consistency across *multiple* bits is the caller's
    /// protocol (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    // wdm-lint: hot-path
    pub fn is_set(&self, index: usize) -> bool {
        assert!(index < self.len, "mask index {index} out of range");
        self.bits[index / 64].load(RELAXED) & (1 << (index % 64)) != 0
    }

    /// Sets bit `index`; returns `true` when the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize) -> bool {
        assert!(index < self.len, "mask index {index} out of range");
        let word = self.bits[index / 64].get_mut();
        let bit = 1 << (index % 64);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        *self.set_count.get_mut() += 1;
        true
    }

    /// Clears bit `index`; returns `true` when the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn clear(&mut self, index: usize) -> bool {
        assert!(index < self.len, "mask index {index} out of range");
        let word = self.bits[index / 64].get_mut();
        let bit = 1 << (index % 64);
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        *self.set_count.get_mut() -= 1;
        true
    }

    /// Sets bit `index` to `value`; returns `true` when the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_to(&mut self, index: usize, value: bool) -> bool {
        if value {
            self.set(index)
        } else {
            self.clear(index)
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        for w in &mut self.bits {
            *w.get_mut() = 0;
        }
        *self.set_count.get_mut() = 0;
    }

    /// Atomically sets bit `index` through `&self`; returns `true` when
    /// this call changed it (i.e. the caller won the flip).
    ///
    /// Relaxed RMW — callers that need set/observe ordering across bits
    /// must provide it themselves (the concurrent engine's shard
    /// versions do; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fetch_set(&self, index: usize) -> bool {
        assert!(index < self.len, "mask index {index} out of range");
        let bit = 1 << (index % 64);
        let prev = self.bits[index / 64].fetch_or(bit, RELAXED);
        if prev & bit != 0 {
            return false;
        }
        self.set_count.fetch_add(1, RELAXED);
        true
    }

    /// Atomically clears bit `index` through `&self`; returns `true`
    /// when this call changed it. The shared counterpart of
    /// [`clear`](Self::clear); same ordering contract as
    /// [`fetch_set`](Self::fetch_set).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fetch_clear(&self, index: usize) -> bool {
        assert!(index < self.len, "mask index {index} out of range");
        let bit = 1 << (index % 64);
        let prev = self.bits[index / 64].fetch_and(!bit, RELAXED);
        if prev & bit == 0 {
            return false;
        }
        self.set_count.fetch_sub(1, RELAXED);
        true
    }

    /// Atomically sets bit `index` to `value` through `&self`; returns
    /// `true` when the bit changed. The shared counterpart of
    /// [`set_to`](Self::set_to).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fetch_set_to(&self, index: usize, value: bool) -> bool {
        if value {
            self.fetch_set(index)
        } else {
            self.fetch_clear(index)
        }
    }
}

/// Incremental builder producing a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    n: usize,
    edges: Vec<(u32, u32, Cost, EdgeRole)>,
}

impl CsrBuilder {
    /// A builder for a graph with `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the `u32` endpoint encoding.
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "CSR endpoints are u32-encoded; {n} nodes do not fit"
        );
        CsrBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates room for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Adds the directed edge `source → target`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, source: usize, target: usize, cost: Cost, role: EdgeRole) {
        assert!(source < self.n, "source {source} out of range");
        assert!(target < self.n, "target {target} out of range");
        // wdm-lint: cast-checked: endpoints < n, and new() asserts n fits u32
        self.edges.push((source as u32, target as u32, cost, role));
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into CSR form (counting sort by source: `O(n + m)`).
    pub fn build(self) -> CsrGraph {
        let mut offsets = vec![0usize; self.n + 1];
        // `add_edge` bounds every endpoint below `n`, so `s + 1` indexes
        // in range here and in the counting-sort scatter below.
        debug_assert!(
            offsets.len() == self.n + 1,
            "one offset slot past each node"
        );
        for &(s, _, _, _) in &self.edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let m = self.edges.len();
        let mut targets = vec![0u32; m];
        let mut costs = vec![Cost::ZERO; m];
        let mut roles = vec![EdgeRole::Tap; m];
        let mut sources = vec![0u32; m];
        let mut cursor = offsets.clone();
        for (s, t, c, r) in self.edges {
            let at = cursor[s as usize];
            cursor[s as usize] += 1;
            targets[at] = t;
            costs[at] = c;
            roles[at] = r;
            sources[at] = s;
        }
        CsrGraph {
            offsets,
            targets,
            costs,
            roles,
            sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_iterates() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1, Cost::new(5), EdgeRole::Tap);
        b.add_edge(0, 2, Cost::new(7), EdgeRole::Tap);
        b.add_edge(2, 1, Cost::new(1), EdgeRole::Tap);
        assert_eq!(b.edge_count(), 3);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let out0: Vec<usize> = g.out_edges(0).map(|e| e.target).collect();
        assert_eq!(out0, vec![1, 2]);
        assert_eq!(g.out_edges(1).len(), 0);
        let (src, e) = g.edge(2);
        assert_eq!(src, 2);
        assert_eq!(e.target, 1);
        assert_eq!(e.cost, Cost::new(1));
    }

    #[test]
    fn insertion_order_within_source_is_preserved() {
        let mut b = CsrBuilder::new(2);
        for i in 0..5u64 {
            b.add_edge(0, 1, Cost::new(i), EdgeRole::Tap);
        }
        let g = b.build();
        let costs: Vec<Cost> = g.out_edges(0).map(|e| e.cost).collect();
        assert_eq!(costs, (0..5).map(Cost::new).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_sources_are_sorted_into_rows() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(2, 0, Cost::new(1), EdgeRole::Tap);
        b.add_edge(0, 2, Cost::new(2), EdgeRole::Tap);
        b.add_edge(2, 1, Cost::new(3), EdgeRole::Tap);
        let g = b.build();
        assert_eq!(g.out_edges(2).len(), 2);
        assert_eq!(g.out_edges(0).len(), 1);
        let out2: Vec<usize> = g.out_edges(2).map(|e| e.target).collect();
        assert_eq!(out2, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut b = CsrBuilder::new(1);
        b.add_edge(0, 1, Cost::ZERO, EdgeRole::Tap);
    }

    #[test]
    fn mask_set_clear_roundtrip() {
        let mut mask = EdgeMask::all_clear(130);
        assert_eq!(mask.len(), 130);
        assert!(!mask.is_empty());
        assert_eq!(mask.set_count(), 0);
        for i in [0, 63, 64, 129] {
            assert!(mask.set(i));
            assert!(mask.is_set(i));
            assert!(!mask.set(i), "second set of {i} is a no-op");
        }
        assert_eq!(mask.set_count(), 4);
        assert!(!mask.is_set(65));
        assert!(mask.clear(64));
        assert!(!mask.clear(64), "second clear is a no-op");
        assert_eq!(mask.set_count(), 3);
        assert!(mask.set_to(64, true));
        assert!(!mask.set_to(0, true));
        mask.clear_all();
        assert_eq!(mask.set_count(), 0);
        assert!((0..130).all(|i| !mask.is_set(i)));
    }

    #[test]
    #[should_panic(expected = "mask index")]
    fn mask_out_of_range_panics() {
        let mask = EdgeMask::all_clear(3);
        mask.is_set(3);
    }

    #[test]
    fn shared_flips_match_exclusive_flips() {
        // fetch_set/fetch_clear through &self must agree bit-for-bit
        // with the &mut API, including the changed-bit return values.
        let mut a = EdgeMask::all_clear(130);
        let b = EdgeMask::all_clear(130);
        for i in [0, 63, 64, 129, 64, 0] {
            assert_eq!(a.set(i), b.fetch_set(i), "set {i}");
        }
        assert_eq!(a, b);
        assert_eq!(a.set_count(), b.set_count());
        for i in [63, 63, 129] {
            assert_eq!(a.clear(i), b.fetch_clear(i), "clear {i}");
        }
        assert_eq!(a, b);
        for (i, v) in [(5, true), (5, true), (5, false), (64, false)] {
            assert_eq!(a.set_to(i, v), b.fetch_set_to(i, v), "set_to {i} {v}");
        }
        assert_eq!(a, b);
        assert_eq!(a.set_count(), b.set_count());
    }

    #[test]
    fn shared_flips_from_threads_are_exclusive() {
        // Each of 4 threads tries to claim every bit; exactly one
        // claimant per bit may win, and the final set_count is exact
        // once the threads are joined.
        let mask = EdgeMask::all_clear(257);
        let winners: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..mask.len()).filter(|&i| mask.fetch_set(i)).count()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(winners.iter().sum::<usize>(), mask.len());
        assert_eq!(mask.set_count(), mask.len());
        assert!((0..mask.len()).all(|i| mask.is_set(i)));
    }

    #[test]
    fn clone_and_eq_see_current_bits() {
        let src = EdgeMask::all_clear(70);
        src.fetch_set(3);
        src.fetch_set(69);
        let copy = src.clone();
        assert_eq!(copy, src);
        assert!(copy.is_set(3) && copy.is_set(69) && !copy.is_set(4));
        assert_eq!(copy.set_count(), 2);
        copy.fetch_clear(3);
        assert_ne!(copy, src);
    }

    #[test]
    fn masked_adjacency_skips_set_edges() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1, Cost::new(5), EdgeRole::Tap);
        b.add_edge(0, 2, Cost::new(7), EdgeRole::Tap);
        b.add_edge(2, 1, Cost::new(1), EdgeRole::Tap);
        let g = b.build();
        let mut mask = EdgeMask::all_clear(g.edge_count());
        mask.set(0);
        let out0: Vec<usize> = g.out_edges_masked(0, &mask).map(|e| e.target).collect();
        assert_eq!(out0, vec![2]);
        let out2: Vec<usize> = g.out_edges_masked(2, &mask).map(|e| e.target).collect();
        assert_eq!(out2, vec![1]);
        mask.clear(0);
        assert_eq!(g.out_edges_masked(0, &mask).count(), 2);
    }
}
