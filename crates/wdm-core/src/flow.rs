//! Minimum-cost flow (successive shortest paths with potentials).
//!
//! The survivable-routing feature ([`crate::disjoint_semilightpath_pair`])
//! needs two simultaneously-cheapest resource-disjoint paths, which is a
//! 2-unit min-cost flow on the layered graph with unit capacities on
//! traversal edges. This module implements the classic successive-
//! shortest-path algorithm with Johnson potentials (Dijkstra on reduced
//! costs), sufficient for small integral flows over non-negative costs.

use crate::Cost;
use heaps::{BinaryHeap, IndexedPriorityQueue};

/// One directed edge of the flow network (forward arc; the reverse
/// residual arc is implicit).
#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    /// Remaining capacity.
    cap: u32,
    /// Cost per unit (finite).
    cost: u64,
    /// Index of the paired reverse edge in `edges`.
    rev: usize,
}

/// A min-cost-flow network over `n` nodes.
///
/// # Examples
///
/// ```
/// use wdm_core::flow::MinCostFlow;
///
/// let mut f = MinCostFlow::new(4);
/// let top = f.add_edge(0, 1, 1, 1);
/// f.add_edge(1, 3, 1, 1);
/// let bottom = f.add_edge(0, 2, 1, 3);
/// f.add_edge(2, 3, 1, 3);
/// let (flow, cost) = f.solve(0, 3, 2).expect("feasible");
/// assert_eq!((flow, cost), (2, wdm_core::Cost::new(8))); // 1+1 and 3+3
/// assert_eq!(f.flow_on(top), 1);
/// assert_eq!(f.flow_on(bottom), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    n: usize,
    edges: Vec<FlowEdge>,
    /// `adj[v]` — indices into `edges` leaving `v` (forward and residual).
    adj: Vec<Vec<usize>>,
    /// Original capacities of forward edges, for flow read-back.
    original_cap: Vec<Option<u32>>,
}

impl MinCostFlow {
    /// An empty flow network over `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            original_cap: Vec::new(),
        }
    }

    /// Adds a forward edge `u → v` and returns its handle for
    /// [`MinCostFlow::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u32, cost: u64) -> usize {
        assert!(u < self.n && v < self.n, "flow edge endpoint out of range");
        let fwd = self.edges.len();
        self.edges.push(FlowEdge {
            to: v,
            cap,
            cost,
            rev: fwd + 1,
        });
        self.original_cap.push(Some(cap));
        self.edges.push(FlowEdge {
            to: u,
            cap: 0,
            cost, // reverse arc costs -cost; tracked via sign at use site
            rev: fwd,
        });
        self.original_cap.push(None);
        self.adj[u].push(fwd);
        self.adj[v].push(fwd + 1);
        fwd
    }

    /// Signed cost of traversing edge index `e` in the residual graph.
    fn signed_cost(&self, e: usize) -> i128 {
        if self.original_cap[e].is_some() {
            self.edges[e].cost as i128
        } else {
            -(self.edges[e].cost as i128)
        }
    }

    /// Sends up to `target` units from `s` to `t` at minimum cost.
    ///
    /// Returns `(flow_sent, total_cost)`; `None` only when `s`/`t` are out
    /// of range. `flow_sent < target` means the network saturated early.
    pub fn solve(&mut self, s: usize, t: usize, target: u32) -> Option<(u32, Cost)> {
        if s >= self.n || t >= self.n {
            return None;
        }
        let mut potentials = vec![0i128; self.n];
        let mut flow = 0u32;
        let mut total: u128 = 0;
        while flow < target {
            // Dijkstra on reduced costs.
            let mut dist: Vec<Option<i128>> = vec![None; self.n];
            let mut parent_edge: Vec<Option<usize>> = vec![None; self.n];
            let mut heap: BinaryHeap<Cost> = BinaryHeap::with_capacity(self.n);
            dist[s] = Some(0);
            heap.push(s, Cost::ZERO);
            let mut settled = vec![false; self.n];
            while let Some((u, _)) = heap.pop_min() {
                settled[u] = true;
                let Some(du) = dist[u] else {
                    unreachable!("popped nodes have distances")
                };
                for &ei in &self.adj[u] {
                    let edge = &self.edges[ei];
                    if edge.cap == 0 || settled[edge.to] {
                        continue;
                    }
                    let reduced = self.signed_cost(ei) + potentials[u] - potentials[edge.to];
                    debug_assert!(reduced >= 0, "potentials keep reduced costs non-negative");
                    let cand = du + reduced;
                    if dist[edge.to].map(|d| cand < d).unwrap_or(true) {
                        dist[edge.to] = Some(cand);
                        parent_edge[edge.to] = Some(ei);
                        let Ok(cand_u64) = u64::try_from(cand) else {
                            unreachable!("reduced distances are non-negative")
                        };
                        heap.push_or_decrease(edge.to, Cost::new(cand_u64));
                    }
                }
            }
            let Some(dt) = dist[t] else {
                break; // t unreachable: saturated
            };
            // Update potentials.
            for v in 0..self.n {
                if let Some(d) = dist[v] {
                    potentials[v] += d;
                } else {
                    potentials[v] += dt; // keep unreached nodes consistent
                }
            }
            // Find bottleneck along the augmenting path.
            let mut bottleneck = target - flow;
            let mut at = t;
            while let Some(ei) = parent_edge[at] {
                bottleneck = bottleneck.min(self.edges[ei].cap);
                at = self.edges[self.edges[ei].rev].to;
            }
            // Augment.
            let mut at = t;
            let mut path_cost: i128 = 0;
            while let Some(ei) = parent_edge[at] {
                path_cost += self.signed_cost(ei);
                self.edges[ei].cap -= bottleneck;
                let rev = self.edges[ei].rev;
                self.edges[rev].cap += bottleneck;
                at = self.edges[rev].to;
            }
            let Ok(step_cost) = u128::try_from(path_cost) else {
                unreachable!("nonneg costs ⇒ nonneg augmenting paths")
            };
            total += step_cost * bottleneck as u128;
            flow += bottleneck;
        }
        assert!(
            u64::try_from(total).is_ok(),
            "total min-cost-flow cost {total} overflows u64"
        );
        // wdm-lint: cast-checked: asserted to fit u64 directly above
        Some((flow, Cost::new(total as u64)))
    }

    /// Units of flow currently on forward edge `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is not a forward-edge handle from
    /// [`MinCostFlow::add_edge`].
    pub fn flow_on(&self, handle: usize) -> u32 {
        let Some(original) = self.original_cap[handle] else {
            unreachable!("flow_on requires a forward-edge handle from add_edge")
        };
        original - self.edges[handle].cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_flow() {
        let mut f = MinCostFlow::new(3);
        let a = f.add_edge(0, 1, 5, 2);
        let b = f.add_edge(1, 2, 5, 3);
        let (flow, cost) = f.solve(0, 2, 4).expect("valid");
        assert_eq!(flow, 4);
        assert_eq!(cost, Cost::new(20));
        assert_eq!(f.flow_on(a), 4);
        assert_eq!(f.flow_on(b), 4);
    }

    #[test]
    fn saturates_below_target() {
        let mut f = MinCostFlow::new(2);
        f.add_edge(0, 1, 3, 1);
        let (flow, cost) = f.solve(0, 1, 10).expect("valid");
        assert_eq!(flow, 3);
        assert_eq!(cost, Cost::new(3));
    }

    #[test]
    fn rerouting_via_residual_arcs() {
        // The classic example where the second unit must push flow back:
        //   0 → 1 (cap 1, cost 1), 0 → 2 (cap 1, cost 10),
        //   1 → 2 (cap 1, cost 1), 1 → 3 (cap 1, cost 10),
        //   2 → 3 (cap 1, cost 1).
        // One unit: 0-1-2-3 (cost 3). Two units optimal: 0-1-3 and 0-2-3
        // (cost 11 + 11 = 22)? Let's compute: paths 0-1-3 = 11, 0-2-3 = 11
        // → 22; alternative 0-1-2-3 = 3 and 0-2... 0-2 used? 0-2-3 shares
        // 2-3 (cap 1) → infeasible; so optimum = 0-1-2-3 + 0-2→(2-3 full)…
        // The SSP algorithm must *undo* 1→2 via the residual arc: final
        // flow = {0-1-3, 0-2-3} costing 22.
        let mut f = MinCostFlow::new(4);
        f.add_edge(0, 1, 1, 1);
        f.add_edge(0, 2, 1, 10);
        let mid = f.add_edge(1, 2, 1, 1);
        f.add_edge(1, 3, 1, 10);
        f.add_edge(2, 3, 1, 1);
        let (flow, cost) = f.solve(0, 3, 2).expect("valid");
        assert_eq!(flow, 2);
        assert_eq!(cost, Cost::new(22));
        // The shortcut edge ends up unused after the rerouting.
        assert_eq!(f.flow_on(mid), 0);
    }

    #[test]
    fn unreachable_sink_gives_zero_flow() {
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 1, 1);
        let (flow, cost) = f.solve(0, 2, 1).expect("valid");
        assert_eq!(flow, 0);
        assert_eq!(cost, Cost::ZERO);
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut f = MinCostFlow::new(2);
        assert!(f.solve(0, 5, 1).is_none());
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 2, 0);
        f.add_edge(1, 2, 2, 0);
        let (flow, cost) = f.solve(0, 2, 2).expect("valid");
        assert_eq!((flow, cost), (2, Cost::ZERO));
    }
}
