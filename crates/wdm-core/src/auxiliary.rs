//! The paper's auxiliary-graph construction (Section III-A).
//!
//! Given the network `G` with per-link availability sets, the construction
//! proceeds conceptually through:
//!
//! 1. `G_M` — the wavelength-expanded multigraph (one parallel link per
//!    `(e, λ ∈ Λ(e))` pair). We never materialize it: its per-node
//!    wavelength sets `Λ_in(G_M, v)` / `Λ_out(G_M, v)` are all later stages
//!    need.
//! 2. `G_v = (X_v, Y_v, E_v)` — a bipartite *conversion gadget* per node:
//!    one `X_v` node per incoming wavelength, one `Y_v` node per outgoing
//!    wavelength, and an edge `x(λ) → y(λ')` when `λ = λ'` (cost 0) or the
//!    conversion `λ → λ'` is allowed at `v` (cost `c_v(λ, λ')`).
//! 3. `G'` — the union of all gadgets plus one *traversal* edge
//!    `y_u(λ) → x_v(λ)` of weight `w(e, λ)` per multigraph link
//!    `e = ⟨u, v⟩` carrying `λ`.
//! 4. `G_{s,t}` — `G'` plus a super-source `s'` (zero-cost taps into `Y_s`)
//!    and super-sink `t''` (zero-cost taps out of `X_t`); a shortest
//!    `s' → t''` path maps one-to-one onto an optimal semilightpath
//!    (Theorem 1).
//! 5. `G_all` — `G'` plus per-node terminals `v'`, `v''` for the all-pairs
//!    variant (Corollary 1).
//!
//! The size bounds the paper states as Observations 1–5 are exposed through
//! [`AuxStats`] and asserted in this module's tests and the E8 experiment.

use crate::csr::{CsrBuilder, CsrGraph, EdgeRole};
use crate::dijkstra::ShortestPathTree;
use crate::{Cost, Hop, Semilightpath, Wavelength, WdmNetwork};
use wdm_graph::NodeId;

/// Which terminals the auxiliary graph is equipped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminals {
    /// Bare `G'` (no terminals); useful for size experiments.
    None,
    /// `G_{s,t}`: super-source at `s`, super-sink at `t`.
    Pair { s: NodeId, t: NodeId },
    /// `G_all`: terminals `v'`/`v''` for every node.
    All,
}

/// What an auxiliary-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxNodeKind {
    /// An `X_v` node: `v` receiving on `wavelength`.
    In {
        /// The physical node.
        node: NodeId,
        /// The receiving wavelength.
        wavelength: Wavelength,
    },
    /// A `Y_v` node: `v` transmitting on `wavelength`.
    Out {
        /// The physical node.
        node: NodeId,
        /// The transmitting wavelength.
        wavelength: Wavelength,
    },
    /// A super-source terminal (`s'`, or `v'` in `G_all`).
    Source {
        /// The physical node it taps into.
        node: NodeId,
    },
    /// A super-sink terminal (`t''`, or `v''` in `G_all`).
    Sink {
        /// The physical node it taps out of.
        node: NodeId,
    },
}

/// Size accounting for the construction, mirroring Observations 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuxStats {
    /// `n`, `m`, `k` of the underlying network.
    pub n: usize,
    /// Directed link count of `G`.
    pub m: usize,
    /// Global wavelength count.
    pub k: usize,
    /// The paper's `k0 = max_e |Λ(e)|`.
    pub k0: usize,
    /// `m₁ = |E_M| = Σ_e |Λ(e)| ≤ k·m` (also `= |E_org|`).
    pub multigraph_links: usize,
    /// `|V'| = Σ_v (|X_v| + |Y_v|) ≤ 2kn` (Observation 2).
    pub core_nodes: usize,
    /// `Σ_v |E_v| ≤ k²n` (Observations 1/2), or `≤ d²nk0²` (Observation 4).
    pub conversion_edges: usize,
    /// Terminal nodes added on top of `G'`.
    pub terminal_nodes: usize,
    /// Zero-cost tap edges added on top of `G'`.
    pub tap_edges: usize,
}

impl AuxStats {
    /// Total node count of the built search graph.
    pub fn total_nodes(&self) -> usize {
        self.core_nodes + self.terminal_nodes
    }

    /// Total edge count of the built search graph.
    pub fn total_edges(&self) -> usize {
        self.conversion_edges + self.multigraph_links + self.tap_edges
    }

    /// Checks the paper's size bounds (Observations 1–5 and the `G_{s,t}`
    /// bound of Section III-A); returns the first violated bound.
    pub fn check_paper_bounds(&self) -> Result<(), String> {
        let AuxStats { n, m, k, .. } = *self;
        if self.multigraph_links > k * m {
            return Err(format!(
                "|E_M| = {} exceeds km = {}",
                self.multigraph_links,
                k * m
            ));
        }
        if self.core_nodes > 2 * k * n {
            return Err(format!(
                "|V'| = {} exceeds 2kn = {}",
                self.core_nodes,
                2 * k * n
            ));
        }
        if self.conversion_edges > k * k * n {
            return Err(format!(
                "Σ|E_v| = {} exceeds k²n = {}",
                self.conversion_edges,
                k * k * n
            ));
        }
        Ok(())
    }
}

/// The built search graph with its node-meaning table and terminals.
///
/// # Examples
///
/// ```
/// use wdm_core::{AuxiliaryGraph, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let aux = AuxiliaryGraph::for_pair(&net, 0.into(), 1.into());
/// // Y_0 = {λ0}, X_1 = {λ0}, plus s' and t''.
/// assert_eq!(aux.graph().node_count(), 4);
/// assert_eq!(aux.graph().edge_count(), 3); // tap + traversal + tap
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AuxiliaryGraph {
    graph: CsrGraph,
    kinds: Vec<AuxNodeKind>,
    /// `x_offset[v]` — first aux id of `X_v`; `X_v` ids are contiguous.
    x_offset: Vec<usize>,
    /// `y_offset[v]` — first aux id of `Y_v`.
    y_offset: Vec<usize>,
    /// Sorted incoming wavelengths per node (`Λ_in(G_M, v)`).
    in_wavelengths: Vec<Vec<Wavelength>>,
    /// Sorted outgoing wavelengths per node (`Λ_out(G_M, v)`).
    out_wavelengths: Vec<Vec<Wavelength>>,
    terminals: Terminals,
    /// First terminal id (== core node count).
    terminal_base: usize,
    stats: AuxStats,
}

impl AuxiliaryGraph {
    /// Builds the bare `G'` (no terminals).
    pub fn core(network: &WdmNetwork) -> Self {
        Self::build(network, Terminals::None)
    }

    /// Builds `G_{s,t}` for the query `s → t` (Theorem 1).
    pub fn for_pair(network: &WdmNetwork, s: NodeId, t: NodeId) -> Self {
        Self::build(network, Terminals::Pair { s, t })
    }

    /// Builds `G_all` with per-node terminals `v'`, `v''` (Corollary 1).
    pub fn for_all_pairs(network: &WdmNetwork) -> Self {
        Self::build(network, Terminals::All)
    }

    fn build(network: &WdmNetwork, terminals: Terminals) -> Self {
        let g = network.graph();
        let n = g.node_count();

        // Λ_in(G_M, v) and Λ_out(G_M, v) for every node, sorted.
        let mut in_wavelengths: Vec<Vec<Wavelength>> = Vec::with_capacity(n);
        let mut out_wavelengths: Vec<Vec<Wavelength>> = Vec::with_capacity(n);
        for v in g.nodes() {
            in_wavelengths.push(network.lambda_in(v).iter().collect());
            out_wavelengths.push(network.lambda_out(v).iter().collect());
        }

        // Number the core nodes: X_v then Y_v, per node in order.
        let mut x_offset = vec![0usize; n];
        let mut y_offset = vec![0usize; n];
        let mut next = 0usize;
        let mut kinds = Vec::new();
        for v in 0..n {
            x_offset[v] = next;
            for &w in &in_wavelengths[v] {
                kinds.push(AuxNodeKind::In {
                    node: NodeId::new(v),
                    wavelength: w,
                });
            }
            next += in_wavelengths[v].len();
            y_offset[v] = next;
            for &w in &out_wavelengths[v] {
                kinds.push(AuxNodeKind::Out {
                    node: NodeId::new(v),
                    wavelength: w,
                });
            }
            next += out_wavelengths[v].len();
        }
        let core_nodes = next;
        let terminal_base = core_nodes;
        let terminal_nodes = match terminals {
            Terminals::None => 0,
            Terminals::Pair { .. } => 2,
            Terminals::All => 2 * n,
        };
        match terminals {
            Terminals::None => {}
            Terminals::Pair { s, t } => {
                kinds.push(AuxNodeKind::Source { node: s });
                kinds.push(AuxNodeKind::Sink { node: t });
            }
            Terminals::All => {
                for v in 0..n {
                    kinds.push(AuxNodeKind::Source {
                        node: NodeId::new(v),
                    });
                    kinds.push(AuxNodeKind::Sink {
                        node: NodeId::new(v),
                    });
                }
            }
        }

        let mut builder = CsrBuilder::new(core_nodes + terminal_nodes);

        // E_v: conversion gadget edges.
        let mut conversion_edges = 0usize;
        for v in 0..n {
            let node = NodeId::new(v);
            let policy = network.conversion_at(node);
            for (xi, &from) in in_wavelengths[v].iter().enumerate() {
                for (yi, &to) in out_wavelengths[v].iter().enumerate() {
                    let cost = policy.cost(from, to);
                    if cost.is_finite() {
                        builder.add_edge(
                            x_offset[v] + xi,
                            y_offset[v] + yi,
                            cost,
                            EdgeRole::Conversion { node, from, to },
                        );
                        conversion_edges += 1;
                    }
                }
            }
        }

        // E_org: traversal edges, one per (link, available wavelength).
        let mut multigraph_links = 0usize;
        for (link, l) in g.links() {
            let u = l.tail().index();
            let v = l.head().index();
            for (w, cost) in network.wavelengths_on(link).iter() {
                let yi = index_of(&out_wavelengths[u], w);
                let xi = index_of(&in_wavelengths[v], w);
                builder.add_edge(
                    y_offset[u] + yi,
                    x_offset[v] + xi,
                    cost,
                    EdgeRole::Traversal {
                        link,
                        wavelength: w,
                    },
                );
                multigraph_links += 1;
            }
        }

        // Terminal taps.
        let mut tap_edges = 0usize;
        match terminals {
            Terminals::None => {}
            Terminals::Pair { s, t } => {
                let s_id = terminal_base;
                let t_id = terminal_base + 1;
                for yi in 0..out_wavelengths[s.index()].len() {
                    builder.add_edge(s_id, y_offset[s.index()] + yi, Cost::ZERO, EdgeRole::Tap);
                    tap_edges += 1;
                }
                for xi in 0..in_wavelengths[t.index()].len() {
                    builder.add_edge(x_offset[t.index()] + xi, t_id, Cost::ZERO, EdgeRole::Tap);
                    tap_edges += 1;
                }
            }
            Terminals::All => {
                for v in 0..n {
                    let v_src = terminal_base + 2 * v;
                    let v_snk = terminal_base + 2 * v + 1;
                    for yi in 0..out_wavelengths[v].len() {
                        builder.add_edge(v_src, y_offset[v] + yi, Cost::ZERO, EdgeRole::Tap);
                        tap_edges += 1;
                    }
                    for xi in 0..in_wavelengths[v].len() {
                        builder.add_edge(x_offset[v] + xi, v_snk, Cost::ZERO, EdgeRole::Tap);
                        tap_edges += 1;
                    }
                }
            }
        }

        let stats = AuxStats {
            n,
            m: g.link_count(),
            k: network.k(),
            k0: network.k0(),
            multigraph_links,
            core_nodes,
            conversion_edges,
            terminal_nodes,
            tap_edges,
        };

        AuxiliaryGraph {
            graph: builder.build(),
            kinds,
            x_offset,
            y_offset,
            in_wavelengths,
            out_wavelengths,
            terminals,
            terminal_base,
            stats,
        }
    }

    /// The underlying CSR search graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Size accounting (Observations 1–5).
    pub fn stats(&self) -> AuxStats {
        self.stats
    }

    /// Meaning of an auxiliary node.
    ///
    /// # Panics
    ///
    /// Panics if `aux_id` is out of range.
    pub fn kind(&self, aux_id: usize) -> AuxNodeKind {
        self.kinds[aux_id]
    }

    /// The super-source `s'` (for a [`AuxiliaryGraph::for_pair`] graph).
    pub fn super_source(&self) -> Option<usize> {
        match self.terminals {
            Terminals::Pair { .. } => Some(self.terminal_base),
            _ => None,
        }
    }

    /// The super-sink `t''` (for a [`AuxiliaryGraph::for_pair`] graph).
    pub fn super_sink(&self) -> Option<usize> {
        match self.terminals {
            Terminals::Pair { .. } => Some(self.terminal_base + 1),
            _ => None,
        }
    }

    /// The `(s', t'')` super-terminal pair, for graphs built with
    /// [`AuxiliaryGraph::for_pair`].
    ///
    /// Infallible counterpart of [`super_source`](Self::super_source)/
    /// [`super_sink`](Self::super_sink) for callers that already hold a
    /// pair graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph was built without super-terminals
    /// ([`core`](Self::core) or [`for_all_pairs`](Self::for_all_pairs)).
    pub fn pair_terminals(&self) -> (usize, usize) {
        assert!(
            matches!(self.terminals, Terminals::Pair { .. }),
            "pair_terminals requires a graph built with for_pair"
        );
        (self.terminal_base, self.terminal_base + 1)
    }

    /// The terminal `v'` of `node` (for a [`AuxiliaryGraph::for_all_pairs`]
    /// graph).
    pub fn source_terminal(&self, node: NodeId) -> Option<usize> {
        match self.terminals {
            Terminals::All => Some(self.terminal_base + 2 * node.index()),
            _ => None,
        }
    }

    /// The terminal `v''` of `node` (for a
    /// [`AuxiliaryGraph::for_all_pairs`] graph).
    pub fn sink_terminal(&self, node: NodeId) -> Option<usize> {
        match self.terminals {
            Terminals::All => Some(self.terminal_base + 2 * node.index() + 1),
            _ => None,
        }
    }

    /// The `(v', v'')` terminal pair of `node`, for graphs built with
    /// [`AuxiliaryGraph::for_all_pairs`].
    ///
    /// Infallible counterpart of
    /// [`source_terminal`](Self::source_terminal)/
    /// [`sink_terminal`](Self::sink_terminal) for callers that already
    /// hold an all-pairs graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph was built without per-node terminals
    /// ([`core`](Self::core) or [`for_pair`](Self::for_pair)).
    pub fn all_pairs_terminals(&self, node: NodeId) -> (usize, usize) {
        assert!(
            matches!(self.terminals, Terminals::All),
            "all_pairs_terminals requires a graph built with for_all_pairs"
        );
        let base = self.terminal_base + 2 * node.index();
        (base, base + 1)
    }

    /// The `X_v` node for `(node, wavelength)`, if `wavelength ∈
    /// Λ_in(G_M, node)`.
    pub fn in_node(&self, node: NodeId, wavelength: Wavelength) -> Option<usize> {
        let v = node.index();
        self.in_wavelengths[v]
            .binary_search(&wavelength)
            .ok()
            .map(|i| self.x_offset[v] + i)
    }

    /// The `Y_v` node for `(node, wavelength)`, if `wavelength ∈
    /// Λ_out(G_M, node)`.
    pub fn out_node(&self, node: NodeId, wavelength: Wavelength) -> Option<usize> {
        let v = node.index();
        self.out_wavelengths[v]
            .binary_search(&wavelength)
            .ok()
            .map(|i| self.y_offset[v] + i)
    }

    /// `|X_v|` — the number of distinct incoming wavelengths of `node`.
    pub fn x_len(&self, node: NodeId) -> usize {
        self.in_wavelengths[node.index()].len()
    }

    /// `|Y_v|` — the number of distinct outgoing wavelengths of `node`.
    pub fn y_len(&self, node: NodeId) -> usize {
        self.out_wavelengths[node.index()].len()
    }

    /// Decodes a shortest-path tree rooted at a source terminal into the
    /// semilightpath reaching `sink` (an aux node id, normally a sink
    /// terminal), or `None` when unreachable.
    ///
    /// The decoded path records exactly the traversal edges
    /// (link, wavelength) in travel order — the mapping of Theorem 1 — and
    /// carries the tree's distance as its cost.
    pub fn extract_semilightpath(
        &self,
        tree: &ShortestPathTree,
        sink: usize,
    ) -> Option<Semilightpath> {
        self.extract_semilightpath_from(&tree.dist, &tree.parent, sink)
    }

    /// [`extract_semilightpath`](Self::extract_semilightpath) over raw
    /// `dist`/`parent` slices, so a
    /// [`DijkstraWorkspace`](crate::dijkstra::DijkstraWorkspace) result can
    /// be decoded in place without materializing a tree.
    pub fn extract_semilightpath_from(
        &self,
        dist: &[Cost],
        parent: &[Option<(usize, usize)>],
        sink: usize,
    ) -> Option<Semilightpath> {
        let total = dist[sink];
        if total.is_infinite() {
            return None;
        }
        // One exact allocation for the returned path; growth doubling
        // on the backward walk is what this avoids on the hot path.
        let mut hops = Vec::with_capacity(8);
        let mut at = sink;
        while let Some((prev, edge_idx)) = parent[at] {
            let (_, edge) = self.graph.edge(edge_idx);
            if let EdgeRole::Traversal { link, wavelength } = edge.role {
                hops.push(Hop { link, wavelength });
            }
            at = prev;
        }
        hops.reverse();
        Some(Semilightpath::new(hops, total))
    }
}

fn index_of(sorted: &[Wavelength], w: Wavelength) -> usize {
    match sorted.binary_search(&w) {
        Ok(i) => i,
        Err(_) => unreachable!("wavelength present by construction of Λ_in/Λ_out"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, WdmNetwork};
    use wdm_graph::DiGraph;

    /// 0 →e0→ 1 →e1→ 2 with λ0 on e0, {λ0, λ1} on e1; uniform conversion.
    fn chain() -> WdmNetwork {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(0, 20), (1, 2)])
            .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    #[test]
    fn core_sizes_match_hand_count() {
        let net = chain();
        let aux = AuxiliaryGraph::core(&net);
        let s = aux.stats();
        // X_0 = ∅, Y_0 = {λ0}; X_1 = {λ0}, Y_1 = {λ0, λ1}; X_2 = {λ0, λ1}, Y_2 = ∅.
        assert_eq!(s.core_nodes, 6);
        // E_1 = {λ0→λ0, λ0→λ1} (uniform conversion allows both).
        assert_eq!(s.conversion_edges, 2);
        // E_org: e0 carries 1 wavelength, e1 carries 2.
        assert_eq!(s.multigraph_links, 3);
        assert_eq!(s.terminal_nodes, 0);
        assert_eq!(s.tap_edges, 0);
        s.check_paper_bounds().expect("bounds hold");
    }

    #[test]
    fn node_kind_mapping_round_trips() {
        let net = chain();
        let aux = AuxiliaryGraph::core(&net);
        for v in net.graph().nodes() {
            for w in net.lambda_in(v).iter() {
                let id = aux.in_node(v, w).expect("x-node exists");
                assert_eq!(
                    aux.kind(id),
                    AuxNodeKind::In {
                        node: v,
                        wavelength: w
                    }
                );
            }
            for w in net.lambda_out(v).iter() {
                let id = aux.out_node(v, w).expect("y-node exists");
                assert_eq!(
                    aux.kind(id),
                    AuxNodeKind::Out {
                        node: v,
                        wavelength: w
                    }
                );
            }
        }
        assert_eq!(aux.in_node(NodeId::new(0), Wavelength::new(0)), None);
        assert_eq!(aux.out_node(NodeId::new(2), Wavelength::new(0)), None);
    }

    #[test]
    fn pair_terminals_and_taps() {
        let net = chain();
        let aux = AuxiliaryGraph::for_pair(&net, NodeId::new(0), NodeId::new(2));
        let s = aux.stats();
        assert_eq!(s.terminal_nodes, 2);
        // |Y_0| = 1 source tap, |X_2| = 2 sink taps.
        assert_eq!(s.tap_edges, 3);
        let sp = aux.super_source().expect("has source");
        let sk = aux.super_sink().expect("has sink");
        assert!(matches!(aux.kind(sp), AuxNodeKind::Source { .. }));
        assert!(matches!(aux.kind(sk), AuxNodeKind::Sink { .. }));
        assert_eq!(aux.graph().out_edges(sp).len(), 1);
        assert_eq!(aux.source_terminal(NodeId::new(0)), None);
    }

    #[test]
    fn all_pairs_terminals() {
        let net = chain();
        let aux = AuxiliaryGraph::for_all_pairs(&net);
        let s = aux.stats();
        assert_eq!(s.terminal_nodes, 6);
        // Taps: Σ (|X_v| + |Y_v|) = core_nodes.
        assert_eq!(s.tap_edges, s.core_nodes);
        assert!(aux.super_source().is_none());
        for v in net.graph().nodes() {
            let src = aux.source_terminal(v).expect("v' exists");
            let snk = aux.sink_terminal(v).expect("v'' exists");
            assert!(matches!(aux.kind(src), AuxNodeKind::Source { node } if node == v));
            assert!(matches!(aux.kind(snk), AuxNodeKind::Sink { node } if node == v));
        }
    }

    #[test]
    fn forbidden_conversion_omits_gadget_edge() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            // node 1: Forbidden (default) → only λ=λ' edges, none here.
            .build()
            .expect("valid");
        let aux = AuxiliaryGraph::core(&net);
        assert_eq!(aux.stats().conversion_edges, 0);
    }

    #[test]
    fn identity_conversion_edge_has_zero_cost() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 5)])
            .link_wavelengths(1, [(0, 7)])
            .build()
            .expect("valid");
        let aux = AuxiliaryGraph::core(&net);
        assert_eq!(aux.stats().conversion_edges, 1);
        let x = aux.in_node(NodeId::new(1), Wavelength::new(0)).expect("x");
        let e: Vec<_> = aux.graph().out_edges(x).collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].cost, Cost::ZERO);
        assert!(matches!(e[0].role, EdgeRole::Conversion { .. }));
    }

    #[test]
    fn stats_bound_checker_detects_violations() {
        let bad = AuxStats {
            n: 2,
            m: 1,
            k: 1,
            k0: 1,
            multigraph_links: 5, // > km = 1
            ..AuxStats::default()
        };
        assert!(bad.check_paper_bounds().is_err());
    }
}
