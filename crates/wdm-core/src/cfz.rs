//! The Chlamtac–Faragó–Zhang baseline (the paper's Section III-C
//! comparator).
//!
//! CFZ [4] solve the same problem on the *wavelength graph* `WG`: one node
//! per `(v, λ)` pair for **all** `k·n` combinations, a traversal edge
//! `(u, λ) → (v, λ)` per available `(link, wavelength)`, and a conversion
//! edge `(v, λp) → (v, λq)` per allowed conversion — up to `k²` per node
//! regardless of which wavelengths actually appear on adjacent links. With
//! adjacency lists and the array-scan Dijkstra of its era the algorithm
//! costs `O(k²n + kn²)`.
//!
//! The paper's improvement comes precisely from *not* materializing all
//! `kn` nodes: the layered graph only has nodes for wavelengths that occur
//! on adjacent links. This module implements CFZ faithfully so experiments
//! E3/E9 can reproduce the claimed `Ω(n / max{k, d, log n})` speed-up
//! shape, and the test suite uses it as an independent oracle for the
//! optimal cost.
//!
//! # Semantic caveat: conversion chains
//!
//! In `WG`, two conversion edges at the same node compose: a path may go
//! `(v, λ1) → (v, λ0) → (v, λ2)`, converting *twice* during one visit.
//! Equation (1) charges a single `c_v(λ_arrive, λ_depart)` per junction, so
//! the two formulations agree **iff** every node's conversion costs satisfy
//! the generalized triangle inequality
//! `c_v(p, q) ≤ c_v(p, r) + c_v(r, q)` (with `∞` for forbidden pairs).
//! That holds for [`crate::ConversionPolicy::Forbidden`]/`Free`/`Uniform`,
//! but a [`crate::ConversionPolicy::Matrix`] that forbids `p → q` while
//! allowing `p → r → q`, or a narrow [`crate::ConversionPolicy::Banded`]
//! radius, violates it — then `WG` reports a cheaper "path" that is not a
//! legal Equation-(1) semilightpath. CFZ implicitly assume
//! triangle-consistent costs; we keep their construction literal (the
//! divergence is demonstrated in `chained_conversion_divergence`) and
//! cross-validate against [`crate::reference::reference_route`] instead on
//! chain-inconsistent instances.

use crate::csr::{CsrBuilder, EdgeRole};
use crate::dijkstra::dijkstra_with;
use crate::liang_shen::RouteResult;
use crate::{Cost, Hop, Semilightpath, Wavelength, WdmError, WdmNetwork};
use heaps::HeapKind;
use wdm_graph::NodeId;

/// The CFZ wavelength-graph router.
///
/// Defaults to the [`HeapKind::Array`] queue, matching the `O(kn²)`
/// Dijkstra the paper charges the baseline with; use
/// [`CfzRouter::with_heap`] to give the baseline a modern heap in
/// ablations.
///
/// # Examples
///
/// ```
/// use wdm_core::{CfzRouter, Cost, LiangShenRouter};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = wdm_core::WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 2)])
///     .link_wavelengths(1, [(0, 3)])
///     .build()?;
/// let cfz = CfzRouter::new().route(&net, 0.into(), 2.into())?;
/// let ls = LiangShenRouter::new().route(&net, 0.into(), 2.into())?;
/// assert_eq!(cfz.cost(), ls.cost()); // independent algorithms agree
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CfzRouter {
    heap: HeapKind,
}

impl Default for CfzRouter {
    fn default() -> Self {
        CfzRouter::new()
    }
}

impl CfzRouter {
    /// The historically faithful configuration (array-scan Dijkstra).
    pub fn new() -> Self {
        CfzRouter {
            heap: HeapKind::Array,
        }
    }

    /// Overrides the priority queue (for ablations).
    pub fn with_heap(heap: HeapKind) -> Self {
        CfzRouter { heap }
    }

    /// The configured heap.
    pub fn heap(&self) -> HeapKind {
        self.heap
    }

    /// Finds an optimal semilightpath from `s` to `t` via the wavelength
    /// graph.
    ///
    /// `s == t` returns the empty path of cost zero.
    ///
    /// # Errors
    ///
    /// [`WdmError::NodeOutOfRange`] if `s` or `t` is not a node of the
    /// network.
    pub fn route(
        &self,
        network: &WdmNetwork,
        s: NodeId,
        t: NodeId,
    ) -> Result<RouteResult, WdmError> {
        let n = network.node_count();
        for v in [s, t] {
            if v.index() >= n {
                return Err(WdmError::NodeOutOfRange { node: v, n });
            }
        }
        if s == t {
            return Ok(RouteResult {
                path: Some(Semilightpath::new(Vec::new(), Cost::ZERO)),
                search_nodes: 0,
                search_edges: 0,
                dijkstra: Default::default(),
                aux_stats: None,
            });
        }

        let k = network.k();
        let wg_node = |v: usize, lambda: usize| v * k + lambda;
        let source = n * k;
        let sink = n * k + 1;
        let mut builder = CsrBuilder::new(n * k + 2);

        // Traversal edges: (u, λ) → (v, λ) for λ ∈ Λ(e).
        for (link, l) in network.graph().links() {
            for (w, cost) in network.wavelengths_on(link).iter() {
                builder.add_edge(
                    wg_node(l.tail().index(), w.index()),
                    wg_node(l.head().index(), w.index()),
                    cost,
                    EdgeRole::Traversal {
                        link,
                        wavelength: w,
                    },
                );
            }
        }

        // Conversion edges: (v, λp) → (v, λq) for every allowed ordered
        // pair — CFZ's k² per node, built regardless of adjacency.
        for v in 0..n {
            let node = NodeId::new(v);
            let policy = network.conversion_at(node);
            for p in 0..k {
                for q in 0..k {
                    if p == q {
                        continue;
                    }
                    let (from, to) = (Wavelength::new(p), Wavelength::new(q));
                    let cost = policy.cost(from, to);
                    if cost.is_finite() {
                        builder.add_edge(
                            wg_node(v, p),
                            wg_node(v, q),
                            cost,
                            EdgeRole::Conversion { node, from, to },
                        );
                    }
                }
            }
        }

        // Terminal taps: s* → (s, λ) and (t, λ) → t* for all λ ∈ Λ.
        for lambda in 0..k {
            builder.add_edge(
                source,
                wg_node(s.index(), lambda),
                Cost::ZERO,
                EdgeRole::Tap,
            );
            builder.add_edge(wg_node(t.index(), lambda), sink, Cost::ZERO, EdgeRole::Tap);
        }

        let graph = builder.build();
        let tree = dijkstra_with(self.heap, &graph, source);

        let path = if tree.dist[sink].is_infinite() {
            None
        } else {
            let mut hops = Vec::new();
            let mut at = sink;
            while let Some((prev, edge_idx)) = tree.parent[at] {
                let (_, edge) = graph.edge(edge_idx);
                if let EdgeRole::Traversal { link, wavelength } = edge.role {
                    hops.push(Hop { link, wavelength });
                }
                at = prev;
            }
            hops.reverse();
            Some(Semilightpath::new(hops, tree.dist[sink]))
        };

        Ok(RouteResult {
            path,
            search_nodes: graph.node_count(),
            search_edges: graph.edge_count(),
            dijkstra: tree.stats,
            aux_stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    fn network() -> WdmNetwork {
        let g = DiGraph::from_links(4, [(0, 3), (0, 1), (1, 3), (3, 2)]);
        WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(0, 50), (2, 45)])
            .link_wavelengths(1, [(0, 10)])
            .link_wavelengths(2, [(1, 10)])
            .link_wavelengths(3, [(1, 8), (2, 6)])
            .conversion(1, ConversionPolicy::Uniform(Cost::new(5)))
            .conversion(3, ConversionPolicy::Uniform(Cost::new(2)))
            .build()
            .expect("valid")
    }

    #[test]
    fn wavelength_graph_size_is_kn_plus_terminals() {
        let net = network();
        let r = CfzRouter::new()
            .route(&net, 0.into(), 2.into())
            .expect("ok");
        assert_eq!(r.search_nodes, 3 * 4 + 2);
        let p = r.path.expect("reachable");
        p.validate(&net).expect("valid");
    }

    #[test]
    fn agrees_with_liang_shen_on_all_pairs() {
        let net = network();
        let ls = LiangShenRouter::new();
        let cfz = CfzRouter::new();
        for s in 0..4 {
            for t in 0..4 {
                let (s, t) = (NodeId::new(s), NodeId::new(t));
                let a = ls.route(&net, s, t).expect("ok").cost();
                let b = cfz.route(&net, s, t).expect("ok").cost();
                assert_eq!(a, b, "pair {s} → {t}");
            }
        }
    }

    #[test]
    fn cfz_paths_validate() {
        let net = network();
        let cfz = CfzRouter::new();
        for s in 0..4 {
            for t in 0..4 {
                if let Some(p) = cfz
                    .route(&net, NodeId::new(s), NodeId::new(t))
                    .expect("ok")
                    .path
                {
                    p.validate(&net).expect("valid path");
                }
            }
        }
    }

    #[test]
    fn heap_choice_does_not_change_costs() {
        let net = network();
        let mut costs = Vec::new();
        for kind in HeapKind::ALL {
            costs.push(
                CfzRouter::with_heap(kind)
                    .route(&net, 0.into(), 2.into())
                    .expect("ok")
                    .cost(),
            );
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn chained_conversion_divergence() {
        // Node 1 forbids λ0 → λ2 directly but allows λ0 → λ1 → λ2. The
        // wavelength graph chains the two conversions (cost 2); under
        // Equation-(1) semantics the route does not exist. This documents
        // the semantic caveat in the module docs.
        use crate::ConversionMatrix;
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let mut m = ConversionMatrix::forbidden(3);
        m.set(Wavelength::new(0), Wavelength::new(1), Cost::new(1));
        m.set(Wavelength::new(1), Wavelength::new(2), Cost::new(1));
        let net = WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(2, 10)])
            .conversion(1, ConversionPolicy::Matrix(m))
            .build()
            .expect("valid");
        let cfz = CfzRouter::new()
            .route(&net, 0.into(), 2.into())
            .expect("ok");
        assert_eq!(cfz.cost(), Cost::new(22), "WG chains the conversions");
        // The Equation-(1) solvers agree the route is infeasible.
        let ls = LiangShenRouter::new()
            .route(&net, 0.into(), 2.into())
            .expect("ok");
        assert!(ls.path.is_none());
        let refr = crate::reference::reference_route(&net, 0.into(), 2.into()).expect("ok");
        assert!(refr.is_none());
        // And the chained WG path fails Equation-(1) validation.
        let p = cfz.path.expect("WG path exists");
        assert!(matches!(
            p.validate(&net),
            Err(crate::RouteError::ConversionForbidden { .. })
        ));
    }

    #[test]
    fn unreachable_is_none() {
        let g = DiGraph::from_links(2, [(1, 0)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .build()
            .expect("valid");
        let r = CfzRouter::new()
            .route(&net, 0.into(), 1.into())
            .expect("ok");
        assert!(r.path.is_none());
    }

    #[test]
    fn trivial_and_error_cases() {
        let net = network();
        let r = CfzRouter::new()
            .route(&net, 1.into(), 1.into())
            .expect("ok");
        assert_eq!(r.cost(), Cost::ZERO);
        assert!(matches!(
            CfzRouter::new().route(&net, 0.into(), 99.into()),
            Err(WdmError::NodeOutOfRange { .. })
        ));
    }
}
