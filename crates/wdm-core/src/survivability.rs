//! Survivable routing: disjoint primary/backup semilightpath pairs.
//!
//! Dedicated path protection — the standard survivability mechanism in
//! WDM transport networks — provisions every connection twice, on routes
//! that share no resource that a single failure could take down. Two
//! levels are provided:
//!
//! * [`Disjointness::LinkWavelength`] — the pair shares no
//!   (link, wavelength) resource. Solved **exactly** as a 2-unit
//!   minimum-cost flow over the layered graph `G_{s,t}` with unit
//!   capacity on every traversal edge: the flow decomposes into the
//!   cheapest resource-disjoint pair, including the "trap topology" cases
//!   where routing the primary greedily first makes any backup
//!   impossible.
//! * [`Disjointness::PhysicalLink`] — the pair shares no physical link
//!   (survives a fibre cut). Solved with the standard active-path-first
//!   *heuristic*: route the primary optimally, remove its links, route
//!   the backup on the residue. This can fail on trap topologies even
//!   when a disjoint pair exists; the exact variant is NP-hard to
//!   optimize jointly with wavelength assignment in general, which is why
//!   transport planners use this heuristic.

use crate::auxiliary::AuxiliaryGraph;
use crate::csr::EdgeRole;
use crate::flow::MinCostFlow;
use crate::{Cost, Hop, LiangShenRouter, Semilightpath, WdmError, WdmNetwork};
use wdm_graph::{LinkId, NodeId};

/// What the primary and backup paths must not share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disjointness {
    /// No common (link, wavelength) resource (exact, via min-cost flow).
    LinkWavelength,
    /// No common physical link (active-path-first heuristic).
    PhysicalLink,
}

/// A provisioned protection pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointPair {
    /// The working path (the cheaper of the two).
    pub primary: Semilightpath,
    /// The protection path.
    pub backup: Semilightpath,
}

impl DisjointPair {
    /// Combined cost of both paths.
    pub fn total_cost(&self) -> Cost {
        self.primary.cost() + self.backup.cost()
    }

    /// Returns `true` if the two paths share no (link, wavelength) pair.
    pub fn is_link_wavelength_disjoint(&self) -> bool {
        let used: std::collections::HashSet<(LinkId, crate::Wavelength)> = self
            .primary
            .hops()
            .iter()
            .map(|h| (h.link, h.wavelength))
            .collect();
        self.backup
            .hops()
            .iter()
            .all(|h| !used.contains(&(h.link, h.wavelength)))
    }

    /// Returns `true` if the two paths share no physical link.
    pub fn is_physical_link_disjoint(&self) -> bool {
        let used: std::collections::HashSet<LinkId> =
            self.primary.hops().iter().map(|h| h.link).collect();
        self.backup.hops().iter().all(|h| !used.contains(&h.link))
    }
}

/// Finds a minimum-total-cost disjoint primary/backup pair from `s` to
/// `t`, or `None` when no such pair exists.
///
/// For [`Disjointness::LinkWavelength`] the result minimizes the *sum* of
/// the two path costs (exact). For [`Disjointness::PhysicalLink`] the
/// primary is individually optimal and the backup optimal on the residual
/// network (heuristic; see the module docs).
///
/// # Errors
///
/// [`WdmError::NodeOutOfRange`] for invalid endpoints.
///
/// # Examples
///
/// ```
/// use wdm_core::{disjoint_semilightpath_pair, Disjointness, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// // Two parallel 2-hop routes 0 → 3.
/// let g = DiGraph::from_links(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
/// let net = WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 1)])
///     .link_wavelengths(1, [(0, 1)])
///     .link_wavelengths(2, [(0, 2)])
///     .link_wavelengths(3, [(0, 2)])
///     .build()?;
/// let pair = disjoint_semilightpath_pair(&net, 0.into(), 3.into(), Disjointness::LinkWavelength)?
///     .expect("two disjoint routes exist");
/// assert!(pair.is_link_wavelength_disjoint());
/// assert_eq!(pair.total_cost(), wdm_core::Cost::new(6));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn disjoint_semilightpath_pair(
    network: &WdmNetwork,
    s: NodeId,
    t: NodeId,
    disjointness: Disjointness,
) -> Result<Option<DisjointPair>, WdmError> {
    let n = network.node_count();
    for v in [s, t] {
        if v.index() >= n {
            return Err(WdmError::NodeOutOfRange { node: v, n });
        }
    }
    if s == t {
        // Both "paths" are the trivial empty route.
        let empty = Semilightpath::new(Vec::new(), Cost::ZERO);
        return Ok(Some(DisjointPair {
            primary: empty.clone(),
            backup: empty,
        }));
    }
    match disjointness {
        Disjointness::LinkWavelength => Ok(exact_link_wavelength_pair(network, s, t)),
        Disjointness::PhysicalLink => Ok(heuristic_physical_pair(network, s, t)),
    }
}

/// Exact (link, λ)-disjoint pair via 2-unit min-cost flow on `G_{s,t}`.
fn exact_link_wavelength_pair(network: &WdmNetwork, s: NodeId, t: NodeId) -> Option<DisjointPair> {
    let aux = AuxiliaryGraph::for_pair(network, s, t);
    let g = aux.graph();
    let (source, sink) = aux.pair_terminals();

    let mut flow = MinCostFlow::new(g.node_count());
    // Map from flow-edge handle back to the aux edge it models.
    let mut handles: Vec<(usize, usize)> = Vec::new(); // (flow handle, aux edge idx)
    for u in 0..g.node_count() {
        for edge in g.out_edges(u) {
            let cap = match edge.role {
                // One connection per (link, wavelength).
                EdgeRole::Traversal { .. } => 1,
                // Gadget and tap edges carry both connections if needed.
                EdgeRole::Conversion { .. } | EdgeRole::Tap => 2,
            };
            let Some(cost) = edge.cost.value() else {
                unreachable!("aux edges have finite costs by construction")
            };
            let h = flow.add_edge(u, edge.target, cap, cost);
            handles.push((h, edge.index));
        }
    }
    let (sent, _total) = flow.solve(source, sink, 2)?;
    if sent < 2 {
        return None;
    }

    // Per-aux-edge flow units.
    let mut units = vec![0u32; g.edge_count()];
    for &(h, aux_idx) in &handles {
        units[aux_idx] = flow.flow_on(h);
    }

    // Decompose into two s' → t'' walks; cancel any incidental zero-cost
    // loops by cutting repeated aux nodes.
    let mut paths = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut walk_nodes = vec![source];
        let mut walk_edges = Vec::new();
        let mut at = source;
        while at != sink {
            let Some(next) = g.out_edges(at).find(|e| units[e.index] > 0) else {
                unreachable!("flow conservation yields an out-edge")
            };
            units[next.index] -= 1;
            walk_edges.push(next.index);
            walk_nodes.push(next.target);
            at = next.target;
        }
        // Cut loops (repeated aux nodes) — they carry zero net cost in an
        // optimal flow decomposition.
        let mut seen = std::collections::HashMap::new();
        let mut i = 0;
        while i < walk_nodes.len() {
            if let Some(&j) = seen.get(&walk_nodes[i]) {
                walk_nodes.drain(j + 1..=i);
                walk_edges.drain(j..i);
                seen.retain(|_, &mut pos| pos <= j);
                i = j + 1;
            } else {
                seen.insert(walk_nodes[i], i);
                i += 1;
            }
        }
        // Decode hops and cost.
        let mut hops = Vec::new();
        let mut cost = Cost::ZERO;
        for &e in &walk_edges {
            let (_, edge) = g.edge(e);
            cost += edge.cost;
            if let EdgeRole::Traversal { link, wavelength } = edge.role {
                hops.push(Hop { link, wavelength });
            }
        }
        paths.push(Semilightpath::new(hops, cost));
    }
    paths.sort_by_key(Semilightpath::cost);
    let (Some(backup), Some(primary)) = (paths.pop(), paths.pop()) else {
        unreachable!("the decomposition loop pushes exactly two paths")
    };
    Some(DisjointPair { primary, backup })
}

/// Active-path-first heuristic for physical-link disjointness.
fn heuristic_physical_pair(network: &WdmNetwork, s: NodeId, t: NodeId) -> Option<DisjointPair> {
    let router = LiangShenRouter::new();
    let primary = router.route(network, s, t).ok()?.path?;
    let used: std::collections::HashSet<LinkId> = primary.hops().iter().map(|h| h.link).collect();
    // Residual network: strip every wavelength from the primary's links.
    let residual = network.restrict(|link, _| !used.contains(&link));
    let backup = router.route(&residual, s, t).ok()?.path?;
    Some(DisjointPair { primary, backup })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_graph::DiGraph;

    fn two_route_net() -> WdmNetwork {
        let g = DiGraph::from_links(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(0, 1)])
            .link_wavelengths(2, [(0, 2)])
            .link_wavelengths(3, [(0, 2)])
            .build()
            .expect("valid")
    }

    #[test]
    fn finds_disjoint_pair_on_parallel_routes() {
        let net = two_route_net();
        for d in [Disjointness::LinkWavelength, Disjointness::PhysicalLink] {
            let pair = disjoint_semilightpath_pair(&net, 0.into(), 3.into(), d)
                .expect("ok")
                .expect("pair exists");
            pair.primary.validate(&net).expect("valid primary");
            pair.backup.validate(&net).expect("valid backup");
            assert!(pair.is_link_wavelength_disjoint());
            assert!(pair.is_physical_link_disjoint());
            assert_eq!(pair.total_cost(), Cost::new(6));
            assert!(pair.primary.cost() <= pair.backup.cost());
        }
    }

    #[test]
    fn wavelength_disjoint_on_shared_fibre() {
        // One physical route, two wavelengths: LinkWavelength disjointness
        // is satisfiable (different λ on the same fibre), PhysicalLink is
        // not.
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 5), (1, 7)])
            .build()
            .expect("valid");
        let lw =
            disjoint_semilightpath_pair(&net, 0.into(), 1.into(), Disjointness::LinkWavelength)
                .expect("ok")
                .expect("pair exists");
        assert!(lw.is_link_wavelength_disjoint());
        assert!(!lw.is_physical_link_disjoint());
        assert_eq!(lw.total_cost(), Cost::new(12));
        let pl = disjoint_semilightpath_pair(&net, 0.into(), 1.into(), Disjointness::PhysicalLink)
            .expect("ok");
        assert!(pl.is_none());
    }

    #[test]
    fn trap_topology_solved_exactly_but_not_heuristically() {
        // The classic trap: the shortest path uses links that every
        // alternative needs; greedy primary-first fails, min-cost flow
        // succeeds.
        //
        //   0 → 1 (1), 1 → 3 (10): route A
        //   0 → 2 (10), 2 → 3 (1): route B
        //   1 → 2 (1): the trap shortcut making 0-1-2-3 (cost 3) optimal.
        let g = DiGraph::from_links(4, [(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(0, 10)])
            .link_wavelengths(2, [(0, 10)])
            .link_wavelengths(3, [(0, 1)])
            .link_wavelengths(4, [(0, 1)])
            .build()
            .expect("valid");
        // Heuristic: primary = 0-1-2-3 (cost 3) uses links of both A and
        // B → no backup.
        let heuristic =
            disjoint_semilightpath_pair(&net, 0.into(), 3.into(), Disjointness::PhysicalLink)
                .expect("ok");
        assert!(heuristic.is_none(), "the trap defeats active-path-first");
        // Exact: flow finds A (11) + B (11).
        let exact =
            disjoint_semilightpath_pair(&net, 0.into(), 3.into(), Disjointness::LinkWavelength)
                .expect("ok")
                .expect("flow escapes the trap");
        assert!(exact.is_link_wavelength_disjoint());
        assert!(exact.is_physical_link_disjoint());
        assert_eq!(exact.total_cost(), Cost::new(22));
        exact.primary.validate(&net).expect("valid");
        exact.backup.validate(&net).expect("valid");
    }

    #[test]
    fn no_pair_when_single_route_single_wavelength() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(0, 1)])
            .build()
            .expect("valid");
        for d in [Disjointness::LinkWavelength, Disjointness::PhysicalLink] {
            assert!(disjoint_semilightpath_pair(&net, 0.into(), 2.into(), d)
                .expect("ok")
                .is_none());
        }
    }

    #[test]
    fn trivial_and_error_cases() {
        let net = two_route_net();
        let pair =
            disjoint_semilightpath_pair(&net, 1.into(), 1.into(), Disjointness::LinkWavelength)
                .expect("ok")
                .expect("trivial");
        assert!(pair.primary.is_empty() && pair.backup.is_empty());
        assert!(matches!(
            disjoint_semilightpath_pair(&net, 0.into(), 9.into(), Disjointness::PhysicalLink),
            Err(WdmError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn pair_total_beats_two_greedy_paths_or_ties() {
        // On the parallel-routes network the exact pair total equals the
        // greedy (primary + best alternate) total; on the trap it is the
        // only feasible answer. Cross-check with k-shortest on the easy
        // case.
        let net = two_route_net();
        let pair =
            disjoint_semilightpath_pair(&net, 0.into(), 3.into(), Disjointness::LinkWavelength)
                .expect("ok")
                .expect("pair");
        let alts = crate::k_shortest_semilightpaths(&net, 0.into(), 3.into(), 2).expect("ok");
        let greedy_total = alts[0].cost() + alts[1].cost();
        assert!(pair.total_cost() <= greedy_total);
    }
}
