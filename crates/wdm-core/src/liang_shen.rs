//! The paper's optimal-semilightpath algorithm (Theorem 1).
//!
//! Build `G_{s,t}` ([`AuxiliaryGraph::for_pair`]), run Dijkstra with a
//! Fibonacci heap from `s'`, and decode the shortest `s' → t''` path into a
//! semilightpath with its wavelength assignment. Total cost
//! `O(k²n + km + kn·log(kn))`: the first two terms build the graph, the
//! last is Dijkstra on its ≤ `2kn + 2` nodes.

use crate::auxiliary::{AuxStats, AuxiliaryGraph};
use crate::dijkstra::{dijkstra_with, DijkstraStats, ShortestPathTree};
use crate::{Cost, Semilightpath, WdmError, WdmNetwork};
use heaps::HeapKind;
use wdm_graph::NodeId;

/// The outcome of one routing query, with enough accounting to reproduce
/// the paper's complexity claims empirically.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The optimal semilightpath, or `None` when `t` is unreachable from
    /// `s` under the wavelength/conversion constraints.
    pub path: Option<Semilightpath>,
    /// Node count of the search graph that was built.
    pub search_nodes: usize,
    /// Edge count of the search graph that was built.
    pub search_edges: usize,
    /// Dijkstra operation counters.
    pub dijkstra: DijkstraStats,
    /// Construction accounting (present for the layered-graph algorithm,
    /// absent for baselines with a different construction).
    pub aux_stats: Option<AuxStats>,
}

impl RouteResult {
    /// The cost of the found path ([`Cost::INFINITY`] when unreachable).
    pub fn cost(&self) -> Cost {
        self.path
            .as_ref()
            .map(Semilightpath::cost)
            .unwrap_or(Cost::INFINITY)
    }
}

/// The Liang–Shen optimal semilightpath router.
///
/// # Examples
///
/// ```
/// use wdm_core::{ConversionPolicy, Cost, LiangShenRouter, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// // 0 →(λ0, cost 2)→ 1 →(λ1, cost 3)→ 2, conversion at node 1 costs 1.
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 2)])
///     .link_wavelengths(1, [(1, 3)])
///     .conversion(1, ConversionPolicy::Uniform(Cost::new(1)))
///     .build()?;
/// let result = LiangShenRouter::new().route(&net, 0.into(), 2.into())?;
/// let path = result.path.expect("reachable");
/// assert_eq!(path.cost(), Cost::new(6));
/// assert_eq!(path.conversion_count(), 1);
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LiangShenRouter {
    heap: HeapKind,
}

impl LiangShenRouter {
    /// A router using the Fibonacci heap (the Theorem-1 configuration).
    pub fn new() -> Self {
        LiangShenRouter {
            heap: HeapKind::Fibonacci,
        }
    }

    /// Selects the priority queue driving Dijkstra (for the E9 ablation).
    pub fn with_heap(heap: HeapKind) -> Self {
        LiangShenRouter { heap }
    }

    /// The configured heap.
    pub fn heap(&self) -> HeapKind {
        self.heap
    }

    /// Finds an optimal semilightpath from `s` to `t`.
    ///
    /// `s == t` returns the empty path of cost zero (the trivial optimal
    /// route).
    ///
    /// # Errors
    ///
    /// [`WdmError::NodeOutOfRange`] if `s` or `t` is not a node of the
    /// network.
    pub fn route(
        &self,
        network: &WdmNetwork,
        s: NodeId,
        t: NodeId,
    ) -> Result<RouteResult, WdmError> {
        check_node(network, s)?;
        check_node(network, t)?;
        if s == t {
            return Ok(RouteResult {
                path: Some(Semilightpath::new(Vec::new(), Cost::ZERO)),
                search_nodes: 0,
                search_edges: 0,
                dijkstra: DijkstraStats::default(),
                aux_stats: None,
            });
        }
        let aux = AuxiliaryGraph::for_pair(network, s, t);
        let (source, sink) = aux.pair_terminals();
        let tree = dijkstra_with(self.heap, aux.graph(), source);
        let path = aux.extract_semilightpath(&tree, sink);
        Ok(RouteResult {
            path,
            search_nodes: aux.graph().node_count(),
            search_edges: aux.graph().edge_count(),
            dijkstra: tree.stats,
            aux_stats: Some(aux.stats()),
        })
    }

    /// Computes the full shortest semilightpath *tree* from `s`
    /// (Theorem 1's remark: the Dijkstra run yields optimal semilightpaths
    /// from `s` to every reachable destination at once).
    ///
    /// # Errors
    ///
    /// [`WdmError::NodeOutOfRange`] if `s` is not a node of the network.
    pub fn shortest_tree(
        &self,
        network: &WdmNetwork,
        s: NodeId,
    ) -> Result<SemilightpathTree, WdmError> {
        check_node(network, s)?;
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let (source, _) = aux.all_pairs_terminals(s);
        let tree = dijkstra_with(self.heap, aux.graph(), source);
        Ok(SemilightpathTree {
            aux,
            tree,
            source: s,
        })
    }
}

/// A shortest semilightpath tree rooted at one source node.
///
/// Produced by [`LiangShenRouter::shortest_tree`]; answers cost and path
/// queries for every destination without further search.
#[derive(Debug, Clone)]
pub struct SemilightpathTree {
    aux: AuxiliaryGraph,
    tree: ShortestPathTree,
    source: NodeId,
}

impl SemilightpathTree {
    /// The root of the tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Optimal semilightpath cost from the source to `t`
    /// ([`Cost::ZERO`] for the source itself, [`Cost::INFINITY`] when
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn cost_to(&self, t: NodeId) -> Cost {
        if t == self.source {
            return Cost::ZERO;
        }
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.tree.dist[sink]
    }

    /// The optimal semilightpath to `t` (`None` when unreachable; the
    /// empty path for the source itself).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn path_to(&self, t: NodeId) -> Option<Semilightpath> {
        if t == self.source {
            return Some(Semilightpath::new(Vec::new(), Cost::ZERO));
        }
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.aux.extract_semilightpath(&self.tree, sink)
    }

    /// Dijkstra operation counters for the tree computation.
    pub fn dijkstra_stats(&self) -> DijkstraStats {
        self.tree.stats
    }

    /// Construction accounting of the underlying search graph.
    pub fn aux_stats(&self) -> AuxStats {
        self.aux.stats()
    }
}

/// Convenience wrapper: routes with the default (Fibonacci-heap) router.
///
/// # Errors
///
/// [`WdmError::NodeOutOfRange`] if `s` or `t` is not a node of the network.
///
/// # Examples
///
/// ```
/// use wdm_core::find_optimal_semilightpath;
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 9)])
///     .build()?;
/// let path = find_optimal_semilightpath(&net, 0.into(), 1.into())?.expect("reachable");
/// assert_eq!(path.cost(), wdm_core::Cost::new(9));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn find_optimal_semilightpath(
    network: &WdmNetwork,
    s: NodeId,
    t: NodeId,
) -> Result<Option<Semilightpath>, WdmError> {
    Ok(LiangShenRouter::new().route(network, s, t)?.path)
}

fn check_node(network: &WdmNetwork, v: NodeId) -> Result<(), WdmError> {
    if v.index() >= network.node_count() {
        Err(WdmError::NodeOutOfRange {
            node: v,
            n: network.node_count(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConversionPolicy;
    use wdm_graph::DiGraph;

    fn two_path_network() -> WdmNetwork {
        // Two routes 0→3: direct expensive link vs. 2-hop cheap path that
        // needs a conversion.
        //   0 →e0(λ0:50)→ 3
        //   0 →e1(λ0:10)→ 1 →e2(λ1:10)→ 3   (conversion at 1 costs 5)
        let g = DiGraph::from_links(4, [(0, 3), (0, 1), (1, 3)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 50)])
            .link_wavelengths(1, [(0, 10)])
            .link_wavelengths(2, [(1, 10)])
            .conversion(1, ConversionPolicy::Uniform(Cost::new(5)))
            .build()
            .expect("valid")
    }

    #[test]
    fn prefers_cheaper_converted_route() {
        let net = two_path_network();
        let r = LiangShenRouter::new()
            .route(&net, 0.into(), 3.into())
            .expect("in range");
        let p = r.path.expect("reachable");
        p.validate(&net).expect("valid");
        assert_eq!(p.cost(), Cost::new(25));
        assert_eq!(p.len(), 2);
        assert_eq!(p.conversion_count(), 1);
    }

    #[test]
    fn expensive_conversion_flips_choice() {
        // Same topology but conversion cost 50 → direct route wins.
        let g = DiGraph::from_links(4, [(0, 3), (0, 1), (1, 3)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 50)])
            .link_wavelengths(1, [(0, 10)])
            .link_wavelengths(2, [(1, 10)])
            .conversion(1, ConversionPolicy::Uniform(Cost::new(40)))
            .build()
            .expect("valid");
        let p = find_optimal_semilightpath(&net, 0.into(), 3.into())
            .expect("in range")
            .expect("reachable");
        assert_eq!(p.cost(), Cost::new(50));
        assert_eq!(p.len(), 1);
        assert!(p.is_lightpath());
    }

    #[test]
    fn forbidden_conversion_blocks_route() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            // node 1 cannot convert (default Forbidden)
            .build()
            .expect("valid");
        let r = LiangShenRouter::new()
            .route(&net, 0.into(), 2.into())
            .expect("in range");
        assert!(r.path.is_none());
        assert_eq!(r.cost(), Cost::INFINITY);
    }

    #[test]
    fn same_wavelength_needs_no_converter() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(1, 3)])
            .link_wavelengths(1, [(1, 4)])
            .build()
            .expect("valid");
        let p = find_optimal_semilightpath(&net, 0.into(), 2.into())
            .expect("in range")
            .expect("reachable");
        assert_eq!(p.cost(), Cost::new(7));
        assert!(p.is_lightpath());
    }

    #[test]
    fn source_equals_target_is_trivial() {
        let net = two_path_network();
        let r = LiangShenRouter::new()
            .route(&net, 2.into(), 2.into())
            .expect("in range");
        let p = r.path.expect("trivial");
        assert!(p.is_empty());
        assert_eq!(p.cost(), Cost::ZERO);
    }

    #[test]
    fn node_out_of_range_is_an_error() {
        let net = two_path_network();
        assert!(matches!(
            LiangShenRouter::new().route(&net, 0.into(), 9.into()),
            Err(WdmError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn all_heaps_agree() {
        let net = two_path_network();
        let costs: Vec<Cost> = HeapKind::ALL
            .iter()
            .map(|&k| {
                LiangShenRouter::with_heap(k)
                    .route(&net, 0.into(), 3.into())
                    .expect("in range")
                    .cost()
            })
            .collect();
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn shortest_tree_matches_pair_queries() {
        let net = two_path_network();
        let router = LiangShenRouter::new();
        let tree = router.shortest_tree(&net, 0.into()).expect("in range");
        for t in 0..4 {
            let t = NodeId::new(t);
            let pair_cost = router.route(&net, 0.into(), t).expect("in range").cost();
            let tree_cost = tree.cost_to(t);
            if t == NodeId::new(0) {
                assert_eq!(tree_cost, Cost::ZERO);
            } else {
                assert_eq!(tree_cost, pair_cost, "destination {t}");
            }
            if let Some(p) = tree.path_to(t) {
                p.validate(&net).expect("tree path valid");
            }
        }
    }

    #[test]
    fn route_result_reports_search_size() {
        let net = two_path_network();
        let r = LiangShenRouter::new()
            .route(&net, 0.into(), 3.into())
            .expect("in range");
        let stats = r.aux_stats.expect("layered construction");
        assert_eq!(r.search_nodes, stats.total_nodes());
        assert_eq!(r.search_edges, stats.total_edges());
        stats.check_paper_bounds().expect("bounds hold");
    }
}
