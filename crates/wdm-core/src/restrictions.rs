//! The paper's Restrictions 1–2 and the Theorem-2 node-simplicity
//! guarantee.
//!
//! Without extra assumptions, an optimal semilightpath may pass through a
//! physical node several times on different wavelengths (the paper's
//! Figs. 5–6). Theorem 2 shows this cannot happen when:
//!
//! * **Restriction 1** — at every node `v`, every conversion from a
//!   receivable wavelength (`λp ∈ Λ_in(G, v)`) to a transmittable one
//!   (`λq ∈ Λ_out(G, v)`) is defined (finite cost); and
//! * **Restriction 2** — the most expensive such conversion is strictly
//!   cheaper than the cheapest link traversal.
//!
//! [`theorem2_applies`] checks both; the E7 experiment and the
//! `tests/theorem2.rs` property suite verify the implication empirically.

use crate::{Cost, WdmNetwork};

/// Checks Restriction 1: for every node `v`, `c_v(λp, λq)` is finite for
/// all `λp ∈ Λ_in(G, v)` and `λq ∈ Λ_out(G, v)`.
///
/// # Examples
///
/// ```
/// use wdm_core::{restrictions, ConversionPolicy, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 10)])
///     .link_wavelengths(1, [(1, 10)])
///     .uniform_conversion(ConversionPolicy::Free)
///     .build()?;
/// assert!(restrictions::satisfies_restriction1(&net));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn satisfies_restriction1(network: &WdmNetwork) -> bool {
    for v in network.graph().nodes() {
        let lin = network.lambda_in(v);
        let lout = network.lambda_out(v);
        for p in lin.iter() {
            for q in lout.iter() {
                if network.conversion_cost(v, p, q).is_infinite() {
                    return false;
                }
            }
        }
    }
    true
}

/// The maximum conversion cost over the Restriction-1 domain
/// (`v, λp ∈ Λ_in(G, v), λq ∈ Λ_out(G, v)` with `λp ≠ λq`), or `None` when
/// no node ever needs to convert.
///
/// Returns [`Cost::INFINITY`] if some needed conversion is forbidden
/// (i.e. Restriction 1 fails).
pub fn max_conversion_cost(network: &WdmNetwork) -> Option<Cost> {
    let mut max: Option<Cost> = None;
    for v in network.graph().nodes() {
        let lin = network.lambda_in(v);
        let lout = network.lambda_out(v);
        for p in lin.iter() {
            for q in lout.iter() {
                if p == q {
                    continue;
                }
                let c = network.conversion_cost(v, p, q);
                max = Some(max.map_or(c, |m| m.max(c)));
            }
        }
    }
    max
}

/// Checks Restriction 2: `max c_v(λp, λq) < min w(e, λ)` over the same
/// domain as [`max_conversion_cost`].
///
/// Vacuously true when no conversion is ever needed; false when the
/// network has no (link, wavelength) pair at all (there is no minimum link
/// cost to compare against).
pub fn satisfies_restriction2(network: &WdmNetwork) -> bool {
    let Some(min_link) = network.min_link_cost() else {
        return false;
    };
    match max_conversion_cost(network) {
        None => true,
        Some(max_conv) => max_conv < min_link,
    }
}

/// Checks both restrictions — the hypothesis of Theorem 2. When this
/// returns `true`, every optimal semilightpath is node-simple.
pub fn theorem2_applies(network: &WdmNetwork) -> bool {
    satisfies_restriction1(network) && satisfies_restriction2(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionMatrix, ConversionPolicy, WdmNetwork};
    use wdm_graph::DiGraph;

    fn chain(conv: ConversionPolicy, link_cost: u64) -> WdmNetwork {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, link_cost)])
            .link_wavelengths(1, [(1, link_cost)])
            .uniform_conversion(conv)
            .build()
            .expect("valid")
    }

    #[test]
    fn free_conversion_satisfies_both() {
        let net = chain(ConversionPolicy::Free, 10);
        assert!(satisfies_restriction1(&net));
        assert!(satisfies_restriction2(&net));
        assert!(theorem2_applies(&net));
        assert_eq!(max_conversion_cost(&net), Some(Cost::ZERO));
    }

    #[test]
    fn forbidden_needed_conversion_fails_restriction1() {
        // Node 1 receives λ0 and transmits λ1 but cannot convert.
        let net = chain(ConversionPolicy::Forbidden, 10);
        assert!(!satisfies_restriction1(&net));
        assert_eq!(max_conversion_cost(&net), Some(Cost::INFINITY));
        assert!(!theorem2_applies(&net));
    }

    #[test]
    fn cheap_conversion_satisfies_restriction2() {
        let net = chain(ConversionPolicy::Uniform(Cost::new(3)), 10);
        assert!(satisfies_restriction2(&net));
        assert!(theorem2_applies(&net));
    }

    #[test]
    fn conversion_cost_equal_to_link_cost_fails_restriction2() {
        // Restriction 2 requires *strict* inequality.
        let net = chain(ConversionPolicy::Uniform(Cost::new(10)), 10);
        assert!(satisfies_restriction1(&net));
        assert!(!satisfies_restriction2(&net));
    }

    #[test]
    fn restriction1_only_quantifies_over_adjacent_wavelengths() {
        // Node 1 receives only λ0 and transmits only λ0, so a matrix that
        // forbids λ0 → λ1 still satisfies Restriction 1.
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let m = ConversionMatrix::forbidden(2);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(0, 10)])
            .uniform_conversion(ConversionPolicy::Matrix(m))
            .build()
            .expect("valid");
        assert!(satisfies_restriction1(&net));
        // No conversion pair exists at all → vacuous Restriction 2.
        assert_eq!(max_conversion_cost(&net), None);
        assert!(satisfies_restriction2(&net));
        assert!(theorem2_applies(&net));
    }

    #[test]
    fn empty_availability_fails_restriction2() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 1).build().expect("valid");
        assert!(!satisfies_restriction2(&net));
    }
}
