//! Random WDM instance generators for tests and experiments.
//!
//! The paper states no concrete workloads (it has no experimental section),
//! so the experiment harness sweeps the parameters its analysis is stated
//! in: `n`, `m`, `d`, `k`, and `k0`. This module turns a topology into a
//! full [`WdmNetwork`] instance under a configurable availability and cost
//! model.

use crate::{ConversionMatrix, ConversionPolicy, Cost, WdmError, WdmNetwork};
use rand::seq::SliceRandom;
use rand::Rng;
use wdm_graph::DiGraph;

/// How per-link wavelength availability `Λ(e)` is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Availability {
    /// Every wavelength available on every link (`k0 = k`).
    Full,
    /// Each wavelength available independently with probability `p`; at
    /// least one wavelength is forced per link so no link is useless.
    Probability(f64),
    /// Exactly `min(count, k)` distinct wavelengths per link, uniformly
    /// chosen — the Section-IV regime with `k0 = count`.
    PerLink(usize),
}

/// How per-node conversion policies are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConversionSpec {
    /// No node can convert.
    NoConversion,
    /// Every node converts for free.
    AllFree,
    /// Every node converts at a uniform cost drawn from `[lo, hi]`
    /// (one draw per node).
    Uniform {
        /// Minimum per-node conversion cost.
        lo: u64,
        /// Maximum per-node conversion cost.
        hi: u64,
    },
    /// Limited-range converters at every node.
    Banded {
        /// Spectral radius every converter can bridge.
        radius: usize,
        /// Fixed conversion cost.
        base: u64,
        /// Cost per unit of spectral distance.
        slope: u64,
    },
    /// Each ordered pair `(λp, λq)` is allowed independently with
    /// probability `density`, at a cost drawn from `[lo, hi]`.
    RandomMatrix {
        /// Probability that a given ordered conversion pair is allowed.
        density: f64,
        /// Minimum pair cost.
        lo: u64,
        /// Maximum pair cost.
        hi: u64,
    },
}

/// Full configuration of a random instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceConfig {
    /// Global wavelength count `k`.
    pub k: usize,
    /// Availability model for `Λ(e)`.
    pub availability: Availability,
    /// Inclusive range link costs `w(e, λ)` are drawn from.
    pub link_cost: (u64, u64),
    /// Conversion model for `c_v`.
    pub conversion: ConversionSpec,
}

impl InstanceConfig {
    /// A convenient default: `k` wavelengths, 50% availability, link costs
    /// in `[10, 100]`, uniform conversion cost in `[1, 5]` (satisfies
    /// Restriction 2).
    pub fn standard(k: usize) -> Self {
        InstanceConfig {
            k,
            availability: Availability::Probability(0.5),
            link_cost: (10, 100),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 5 },
        }
    }

    /// The Section-IV regime: at most `k0` wavelengths per link out of a
    /// (possibly much larger) universe of `k`.
    pub fn bounded(k: usize, k0: usize) -> Self {
        InstanceConfig {
            k,
            availability: Availability::PerLink(k0),
            link_cost: (10, 100),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 5 },
        }
    }
}

/// Draws a random instance over `graph`.
///
/// # Errors
///
/// Propagates [`WdmError`] from network validation (e.g. `k == 0`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wdm_core::instance::{random_network, InstanceConfig};
/// use wdm_graph::topology;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let net = random_network(topology::nsfnet(), &InstanceConfig::standard(8), &mut rng)?;
/// assert_eq!(net.k(), 8);
/// assert!(net.k0() >= 1);
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn random_network<R: Rng + ?Sized>(
    graph: DiGraph,
    config: &InstanceConfig,
    rng: &mut R,
) -> Result<WdmNetwork, WdmError> {
    let k = config.k;
    let (lo, hi) = config.link_cost;
    assert!(lo <= hi, "link cost range must be non-empty");
    let n = graph.node_count();
    let m = graph.link_count();
    let mut builder = WdmNetwork::builder(graph, k);

    let mut all: Vec<usize> = (0..k).collect();
    for e in 0..m {
        let lambdas: Vec<usize> = match config.availability {
            Availability::Full => (0..k).collect(),
            Availability::Probability(p) => {
                let mut chosen: Vec<usize> = (0..k).filter(|_| rng.gen::<f64>() < p).collect();
                if chosen.is_empty() && k > 0 {
                    chosen.push(rng.gen_range(0..k));
                }
                chosen
            }
            Availability::PerLink(count) => {
                all.shuffle(rng);
                let take = count.clamp(1, k.max(1)).min(k);
                let mut chosen: Vec<usize> = all[..take].to_vec();
                chosen.sort_unstable();
                chosen
            }
        };
        let entries: Vec<(usize, u64)> = lambdas
            .into_iter()
            .map(|l| (l, rng.gen_range(lo..=hi)))
            .collect();
        builder = builder.link_wavelengths(e, entries);
    }

    for v in 0..n {
        let policy = match config.conversion {
            ConversionSpec::NoConversion => ConversionPolicy::Forbidden,
            ConversionSpec::AllFree => ConversionPolicy::Free,
            ConversionSpec::Uniform { lo, hi } => {
                ConversionPolicy::Uniform(Cost::new(rng.gen_range(lo..=hi)))
            }
            ConversionSpec::Banded {
                radius,
                base,
                slope,
            } => ConversionPolicy::Banded {
                radius,
                base: Cost::new(base),
                slope: Cost::new(slope),
            },
            ConversionSpec::RandomMatrix { density, lo, hi } => {
                let mut matrix = ConversionMatrix::forbidden(k);
                for p in 0..k {
                    for q in 0..k {
                        if p != q && rng.gen::<f64>() < density {
                            matrix.set(
                                crate::Wavelength::new(p),
                                crate::Wavelength::new(q),
                                Cost::new(rng.gen_range(lo..=hi)),
                            );
                        }
                    }
                }
                ConversionPolicy::Matrix(matrix)
            }
        };
        builder = builder.conversion(v, policy);
    }

    builder.build()
}

/// Draws an instance guaranteed to satisfy Restrictions 1 and 2
/// (the Theorem-2 hypothesis): full conversion capability with costs
/// strictly below the cheapest link.
///
/// # Errors
///
/// Propagates [`WdmError`] from network validation.
pub fn theorem2_instance<R: Rng + ?Sized>(
    graph: DiGraph,
    k: usize,
    rng: &mut R,
) -> Result<WdmNetwork, WdmError> {
    let config = InstanceConfig {
        k,
        availability: Availability::Probability(0.6),
        link_cost: (50, 200),
        // Conversion costs 1..=9 < 50 = min link cost → Restriction 2.
        conversion: ConversionSpec::Uniform { lo: 1, hi: 9 },
    };
    random_network(graph, &config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrictions;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdm_graph::topology;

    #[test]
    fn probability_availability_is_never_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let config = InstanceConfig {
            k: 6,
            availability: Availability::Probability(0.01),
            link_cost: (1, 2),
            conversion: ConversionSpec::AllFree,
        };
        let net = random_network(topology::ring(8, true), &config, &mut rng).expect("valid");
        for (e, _) in net.graph().links() {
            assert!(
                !net.wavelengths_on(e).is_empty(),
                "link {e} has no wavelengths"
            );
        }
    }

    #[test]
    fn per_link_bound_is_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = random_network(
            topology::nsfnet(),
            &InstanceConfig::bounded(32, 3),
            &mut rng,
        )
        .expect("valid");
        assert_eq!(net.k(), 32);
        assert!(net.k0() <= 3);
        for (e, _) in net.graph().links() {
            let len = net.wavelengths_on(e).len();
            assert!((1..=3).contains(&len), "link {e} has {len} wavelengths");
        }
    }

    #[test]
    fn full_availability_means_k0_equals_k() {
        let mut rng = SmallRng::seed_from_u64(5);
        let config = InstanceConfig {
            k: 4,
            availability: Availability::Full,
            link_cost: (5, 5),
            conversion: ConversionSpec::NoConversion,
        };
        let net = random_network(topology::ring(5, false), &config, &mut rng).expect("valid");
        assert_eq!(net.k0(), 4);
        assert_eq!(net.multigraph_link_count(), 4 * 5);
    }

    #[test]
    fn link_costs_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(6);
        let config = InstanceConfig {
            k: 3,
            availability: Availability::Full,
            link_cost: (7, 9),
            conversion: ConversionSpec::AllFree,
        };
        let net = random_network(topology::ring(4, true), &config, &mut rng).expect("valid");
        for (e, _) in net.graph().links() {
            for (_, c) in net.wavelengths_on(e).iter() {
                let v = c.value().expect("finite");
                assert!((7..=9).contains(&v));
            }
        }
    }

    #[test]
    fn theorem2_instance_satisfies_restrictions() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..5 {
            let mut rng2 = SmallRng::seed_from_u64(seed);
            let net = theorem2_instance(topology::nsfnet(), 6, &mut rng2).expect("valid");
            assert!(restrictions::theorem2_applies(&net), "seed {seed}");
        }
        let _ = &mut rng;
    }

    #[test]
    fn random_matrix_conversion_builds() {
        let mut rng = SmallRng::seed_from_u64(8);
        let config = InstanceConfig {
            k: 5,
            availability: Availability::Probability(0.5),
            link_cost: (1, 10),
            conversion: ConversionSpec::RandomMatrix {
                density: 0.5,
                lo: 1,
                hi: 3,
            },
        };
        let net = random_network(topology::abilene(), &config, &mut rng).expect("valid");
        // Some node should have at least one allowed off-diagonal pair
        // at density 0.5 with k = 5 (probability of total failure ≈ 0).
        let any_allowed = net.graph().nodes().any(|v| {
            (0..5).any(|p| {
                (0..5).any(|q| {
                    p != q
                        && net
                            .conversion_cost(
                                v,
                                crate::Wavelength::new(p),
                                crate::Wavelength::new(q),
                            )
                            .is_finite()
                })
            })
        });
        assert!(any_allowed);
    }

    #[test]
    fn banded_spec_translates() {
        let mut rng = SmallRng::seed_from_u64(9);
        let config = InstanceConfig {
            k: 8,
            availability: Availability::Full,
            link_cost: (1, 1),
            conversion: ConversionSpec::Banded {
                radius: 2,
                base: 1,
                slope: 1,
            },
        };
        let net = random_network(topology::ring(4, false), &config, &mut rng).expect("valid");
        let v = wdm_graph::NodeId::new(0);
        assert_eq!(
            net.conversion_cost(v, crate::Wavelength::new(0), crate::Wavelength::new(2)),
            Cost::new(3)
        );
        assert!(net
            .conversion_cost(v, crate::Wavelength::new(0), crate::Wavelength::new(5))
            .is_infinite());
    }
}
