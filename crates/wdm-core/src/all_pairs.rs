//! All-pairs optimal semilightpaths (Corollary 1).
//!
//! Build the terminal-equipped auxiliary graph `G_all` once, then grow one
//! shortest-path tree per source terminal `v'`. Each tree costs
//! `O(k²n + km + kn·log(kn))` (Theorem 1), giving
//! `O(k²n² + kmn + kn²·log(kn))` in total.

use crate::auxiliary::{AuxStats, AuxiliaryGraph};
use crate::dijkstra::dijkstra_with;
use crate::{Cost, Semilightpath, WdmNetwork};
use heaps::HeapKind;
use wdm_graph::NodeId;

/// The all-pairs cost matrix plus the machinery to re-derive paths.
///
/// # Examples
///
/// ```
/// use wdm_core::{AllPairs, Cost};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2), (2, 0)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 1)])
///     .link_wavelengths(1, [(0, 1)])
///     .link_wavelengths(2, [(0, 1)])
///     .build()?;
/// let ap = AllPairs::solve(&net);
/// assert_eq!(ap.cost(0.into(), 2.into()), Cost::new(2));
/// assert_eq!(ap.cost(2.into(), 2.into()), Cost::ZERO);
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    /// Row-major `n × n` optimal costs; diagonal fixed at zero.
    costs: Vec<Cost>,
    aux_stats: AuxStats,
    /// Total Dijkstra pops over all `n` tree computations.
    total_settled: usize,
}

impl AllPairs {
    /// Solves all pairs with the Fibonacci heap.
    pub fn solve(network: &WdmNetwork) -> Self {
        Self::solve_with(network, HeapKind::Fibonacci)
    }

    /// Solves all pairs with a chosen heap.
    pub fn solve_with(network: &WdmNetwork, heap: HeapKind) -> Self {
        let n = network.node_count();
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let mut costs = vec![Cost::INFINITY; n * n];
        let mut total_settled = 0;
        for s in 0..n {
            let s_node = NodeId::new(s);
            let source = aux
                .source_terminal(s_node)
                .expect("all-pairs graph has terminals");
            let tree = dijkstra_with(heap, aux.graph(), source);
            total_settled += tree.stats.settled;
            for t in 0..n {
                costs[s * n + t] = if s == t {
                    Cost::ZERO
                } else {
                    let sink = aux
                        .sink_terminal(NodeId::new(t))
                        .expect("all-pairs graph has terminals");
                    tree.dist[sink]
                };
            }
        }
        AllPairs {
            n,
            costs,
            aux_stats: aux.stats(),
            total_settled,
        }
    }

    /// Number of nodes in the underlying network.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Optimal semilightpath cost from `s` to `t`
    /// ([`Cost::INFINITY`] when unreachable, zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn cost(&self, s: NodeId, t: NodeId) -> Cost {
        assert!(s.index() < self.n && t.index() < self.n, "node out of range");
        self.costs[s.index() * self.n + t.index()]
    }

    /// Construction accounting of the shared `G_all`.
    pub fn aux_stats(&self) -> AuxStats {
        self.aux_stats
    }

    /// Total nodes settled across all `n` Dijkstra runs.
    pub fn total_settled(&self) -> usize {
        self.total_settled
    }

    /// Re-derives the actual optimal path for one pair (runs one more
    /// Dijkstra; costs are already available via [`AllPairs::cost`]).
    /// Answers unreachable pairs from the stored matrix without searching.
    pub fn path(
        &self,
        network: &WdmNetwork,
        s: NodeId,
        t: NodeId,
    ) -> Option<Semilightpath> {
        if self.cost(s, t).is_infinite() {
            return None;
        }
        crate::find_optimal_semilightpath(network, s, t).ok().flatten()
    }
}

/// All-pairs solver that *retains* every shortest-path tree, answering
/// path queries in `O(path length)` without re-running any search.
///
/// Memory is `O(n · kn)` (one tree over `G_all` per source), so this is
/// the right choice when many path queries follow — e.g. populating a
/// routing table — while [`AllPairs`] is lighter when only costs matter.
///
/// # Examples
///
/// ```
/// use wdm_core::AllPairsPaths;
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 2)])
///     .link_wavelengths(1, [(0, 3)])
///     .build()?;
/// let ap = AllPairsPaths::solve(&net);
/// let path = ap.path(0.into(), 2.into()).expect("reachable");
/// assert_eq!(path.cost(), wdm_core::Cost::new(5));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllPairsPaths {
    aux: AuxiliaryGraph,
    trees: Vec<crate::dijkstra::ShortestPathTree>,
}

impl AllPairsPaths {
    /// Solves all pairs with the Fibonacci heap, retaining the trees.
    pub fn solve(network: &WdmNetwork) -> Self {
        Self::solve_with(network, HeapKind::Fibonacci)
    }

    /// Solves all pairs with a chosen heap, retaining the trees.
    pub fn solve_with(network: &WdmNetwork, heap: HeapKind) -> Self {
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let trees = (0..network.node_count())
            .map(|s| {
                let source = aux
                    .source_terminal(NodeId::new(s))
                    .expect("all-pairs graph has terminals");
                dijkstra_with(heap, aux.graph(), source)
            })
            .collect();
        AllPairsPaths { aux, trees }
    }

    /// Number of sources (= network nodes).
    pub fn node_count(&self) -> usize {
        self.trees.len()
    }

    /// Optimal cost from `s` to `t` (zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn cost(&self, s: NodeId, t: NodeId) -> Cost {
        if s == t {
            return Cost::ZERO;
        }
        let sink = self
            .aux
            .sink_terminal(t)
            .expect("all-pairs graph has terminals");
        self.trees[s.index()].dist[sink]
    }

    /// The optimal semilightpath from `s` to `t` (`None` when
    /// unreachable; the empty path on the diagonal), decoded from the
    /// retained tree without further search.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn path(&self, s: NodeId, t: NodeId) -> Option<Semilightpath> {
        if s == t {
            return Some(Semilightpath::new(Vec::new(), Cost::ZERO));
        }
        let sink = self
            .aux
            .sink_terminal(t)
            .expect("all-pairs graph has terminals");
        self.aux
            .extract_semilightpath(&self.trees[s.index()], sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::{topology, DiGraph};

    fn ring_network() -> WdmNetwork {
        let g = topology::ring(5, false);
        let mut b = WdmNetwork::builder(g, 2);
        for e in 0..5 {
            b = b.link_wavelengths(e, [(e % 2, 10 + e as u64)]);
        }
        b.uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    #[test]
    fn matches_pairwise_queries() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        let router = LiangShenRouter::new();
        for s in 0..5 {
            for t in 0..5 {
                let (s, t) = (NodeId::new(s), NodeId::new(t));
                assert_eq!(
                    ap.cost(s, t),
                    router.route(&net, s, t).expect("ok").cost(),
                    "pair {s} → {t}"
                );
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        for v in 0..5 {
            assert_eq!(ap.cost(NodeId::new(v), NodeId::new(v)), Cost::ZERO);
        }
    }

    #[test]
    fn unreachable_pairs_are_infinite() {
        // Two disconnected nodes.
        let g = DiGraph::from_links(2, []);
        let net = WdmNetwork::builder(g, 1).build().expect("valid");
        let ap = AllPairs::solve(&net);
        assert_eq!(ap.cost(0.into(), 1.into()), Cost::INFINITY);
        assert_eq!(ap.cost(0.into(), 0.into()), Cost::ZERO);
    }

    #[test]
    fn heap_choice_is_cost_invariant() {
        let net = ring_network();
        let fib = AllPairs::solve_with(&net, HeapKind::Fibonacci);
        let arr = AllPairs::solve_with(&net, HeapKind::Array);
        for s in 0..5 {
            for t in 0..5 {
                assert_eq!(
                    fib.cost(NodeId::new(s), NodeId::new(t)),
                    arr.cost(NodeId::new(s), NodeId::new(t))
                );
            }
        }
    }

    #[test]
    fn all_pairs_paths_matches_costs_and_validates() {
        let net = ring_network();
        let light = AllPairs::solve(&net);
        let full = AllPairsPaths::solve(&net);
        for s in 0..5 {
            for t in 0..5 {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                assert_eq!(light.cost(sn, tn), full.cost(sn, tn), "{s} → {t}");
                match full.path(sn, tn) {
                    Some(p) => {
                        p.validate(&net).expect("valid");
                        assert_eq!(p.cost(), full.cost(sn, tn));
                    }
                    None => assert!(full.cost(sn, tn).is_infinite()),
                }
            }
        }
        assert_eq!(full.node_count(), 5);
    }

    #[test]
    fn path_rederivation_validates() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        let p = ap.path(&net, 0.into(), 3.into()).expect("reachable");
        p.validate(&net).expect("valid");
        assert_eq!(p.cost(), ap.cost(0.into(), 3.into()));
    }
}
