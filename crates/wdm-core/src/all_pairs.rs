//! All-pairs optimal semilightpaths (Corollary 1).
//!
//! Build the terminal-equipped auxiliary graph `G_all` once, then grow one
//! shortest-path tree per source terminal `v'`. Each tree costs
//! `O(k²n + km + kn·log(kn))` (Theorem 1), giving
//! `O(k²n² + kmn + kn²·log(kn))` in total.

use crate::auxiliary::{AuxStats, AuxiliaryGraph};
use crate::csr::CsrGraph;
use crate::dijkstra::{dijkstra_with, DijkstraWorkspace};
use crate::{Cost, Semilightpath, WdmNetwork};
use heaps::{
    ArrayHeap, BinaryHeap, FibonacciHeap, HeapKind, IndexedPriorityQueue, LeftistHeap, PairingHeap,
    SkewHeap,
};
use wdm_graph::NodeId;

// The parallel solver shares one auxiliary graph across worker threads,
// so the read-only structures must be `Send + Sync`. They are composed
// exclusively of `Vec`s of `Copy` data, which makes the auto-traits
// hold; these assertions turn any future regression (say, an `Rc` or
// `Cell` slipping into `CsrGraph`) into a compile error here rather
// than a cryptic one at the `thread::scope` call site.
fn _assert_shared_state_is_send_sync() {
    fn ok<T: Send + Sync>() {}
    ok::<CsrGraph>();
    ok::<AuxiliaryGraph>();
    ok::<WdmNetwork>();
    ok::<AllPairs>();
}

/// The all-pairs cost matrix plus the machinery to re-derive paths.
///
/// # Examples
///
/// ```
/// use wdm_core::{AllPairs, Cost};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2), (2, 0)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 1)])
///     .link_wavelengths(1, [(0, 1)])
///     .link_wavelengths(2, [(0, 1)])
///     .build()?;
/// let ap = AllPairs::solve(&net);
/// assert_eq!(ap.cost(0.into(), 2.into()), Cost::new(2));
/// assert_eq!(ap.cost(2.into(), 2.into()), Cost::ZERO);
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    /// Row-major `n × n` optimal costs; diagonal fixed at zero.
    costs: Vec<Cost>,
    aux_stats: AuxStats,
    /// Total Dijkstra pops over all `n` tree computations.
    total_settled: usize,
}

impl AllPairs {
    /// Solves all pairs with the Fibonacci heap.
    pub fn solve(network: &WdmNetwork) -> Self {
        Self::solve_with(network, HeapKind::Fibonacci)
    }

    /// Solves all pairs with a chosen heap.
    pub fn solve_with(network: &WdmNetwork, heap: HeapKind) -> Self {
        let n = network.node_count();
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let mut costs = vec![Cost::INFINITY; n * n];
        debug_assert!(costs.len() == n * n, "cost matrix is n x n");
        let mut total_settled = 0;
        for s in 0..n {
            let (source, _) = aux.all_pairs_terminals(NodeId::new(s));
            let tree = dijkstra_with(heap, aux.graph(), source);
            total_settled += tree.stats.settled;
            for t in 0..n {
                costs[s * n + t] = if s == t {
                    Cost::ZERO
                } else {
                    let (_, sink) = aux.all_pairs_terminals(NodeId::new(t));
                    tree.dist[sink]
                };
            }
        }
        AllPairs {
            n,
            costs,
            aux_stats: aux.stats(),
            total_settled,
        }
    }

    /// Solves all pairs across `threads` worker threads.
    ///
    /// Corollary 1 computes the all-pairs matrix as `n` *independent*
    /// shortest-path trees over one shared terminal-equipped auxiliary
    /// graph `G_all`; nothing couples one source's tree to another's.
    /// This method exploits that structure directly: the row-major cost
    /// matrix is split into contiguous, disjoint row chunks
    /// (`chunks_mut`), each worker thread owns one chunk, and every
    /// worker reuses a single [`DijkstraWorkspace`] and heap across its
    /// sources so the steady state is allocation-free.
    ///
    /// `threads == 0` uses [`std::thread::available_parallelism`];
    /// `threads == 1` runs inline on the calling thread. Thread counts
    /// above `n` are clamped to `n`.
    ///
    /// # Determinism
    ///
    /// The result is **bit-identical** to [`AllPairs::solve_with`] with
    /// the same heap, for every thread count: each matrix row is a pure
    /// function of (`G_all`, source, heap kind), the partition into
    /// chunks never changes what any single row computes, and the
    /// settled-count total is a sum of per-row counts, which is
    /// independent of summation order.
    ///
    /// # Examples
    ///
    /// ```
    /// use heaps::HeapKind;
    /// use wdm_core::AllPairs;
    /// use wdm_graph::DiGraph;
    ///
    /// let g = DiGraph::from_links(3, [(0, 1), (1, 2), (2, 0)]);
    /// let net = wdm_core::WdmNetwork::builder(g, 1)
    ///     .link_wavelengths(0, [(0, 1)])
    ///     .link_wavelengths(1, [(0, 1)])
    ///     .link_wavelengths(2, [(0, 1)])
    ///     .build()?;
    /// let serial = AllPairs::solve_with(&net, HeapKind::Binary);
    /// let parallel = AllPairs::solve_parallel(&net, HeapKind::Binary, 2);
    /// for s in 0..3 {
    ///     for t in 0..3 {
    ///         assert_eq!(parallel.cost(s.into(), t.into()), serial.cost(s.into(), t.into()));
    ///     }
    /// }
    /// assert_eq!(parallel.total_settled(), serial.total_settled());
    /// # Ok::<(), wdm_core::WdmError>(())
    /// ```
    pub fn solve_parallel(network: &WdmNetwork, heap: HeapKind, threads: usize) -> Self {
        let n = network.node_count();
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let threads = resolve_thread_count(threads, n);
        let mut costs = vec![Cost::INFINITY; n * n];
        let total_settled = if threads <= 1 {
            solve_rows_with(heap, &aux, 0, &mut costs, n)
        } else {
            // ceil-divide so every thread gets work and the remainder
            // lands on the last (possibly shorter) chunk.
            let chunk_rows = n.div_ceil(threads);
            let mut settled_per_chunk = vec![0usize; n.div_ceil(chunk_rows.max(1)).max(1)];
            std::thread::scope(|scope| {
                for (chunk_index, (chunk, settled_slot)) in costs
                    .chunks_mut(chunk_rows * n)
                    .zip(settled_per_chunk.iter_mut())
                    .enumerate()
                {
                    let aux = &aux;
                    scope.spawn(move || {
                        *settled_slot =
                            solve_rows_with(heap, aux, chunk_index * chunk_rows, chunk, n);
                    });
                }
            });
            settled_per_chunk.iter().sum()
        };
        AllPairs {
            n,
            costs,
            aux_stats: aux.stats(),
            total_settled,
        }
    }

    /// Number of nodes in the underlying network.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Optimal semilightpath cost from `s` to `t`
    /// ([`Cost::INFINITY`] when unreachable, zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn cost(&self, s: NodeId, t: NodeId) -> Cost {
        assert!(
            s.index() < self.n && t.index() < self.n,
            "node out of range"
        );
        self.costs[s.index() * self.n + t.index()]
    }

    /// Construction accounting of the shared `G_all`.
    pub fn aux_stats(&self) -> AuxStats {
        self.aux_stats
    }

    /// Total nodes settled across all `n` Dijkstra runs.
    pub fn total_settled(&self) -> usize {
        self.total_settled
    }

    /// Re-derives the actual optimal path for one pair (runs one more
    /// Dijkstra; costs are already available via [`AllPairs::cost`]).
    /// Answers unreachable pairs from the stored matrix without searching.
    pub fn path(&self, network: &WdmNetwork, s: NodeId, t: NodeId) -> Option<Semilightpath> {
        if self.cost(s, t).is_infinite() {
            return None;
        }
        crate::find_optimal_semilightpath(network, s, t)
            .ok()
            .flatten()
    }
}

/// Resolves a user-facing thread count (`0` = auto) to an effective
/// worker count in `1..=n`.
fn resolve_thread_count(threads: usize, n: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    requested.clamp(1, n.max(1))
}

/// Fills a chunk of matrix rows `[first_row, first_row + rows)` — one
/// Dijkstra tree per row over the shared `G_all` — and returns the
/// settled-node total. Monomorphized per heap so the heap kind is
/// dispatched once per worker, not once per source.
fn solve_rows<Q: IndexedPriorityQueue<Cost>>(
    aux: &AuxiliaryGraph,
    first_row: usize,
    rows: &mut [Cost],
    n: usize,
) -> usize {
    debug_assert_eq!(rows.len() % n.max(1), 0);
    let aux_nodes = aux.graph().node_count();
    let mut workspace = DijkstraWorkspace::with_capacity(aux_nodes);
    let mut queue = Q::with_capacity(aux_nodes);
    let mut total_settled = 0;
    for (i, row) in rows.chunks_mut(n).enumerate() {
        let s = first_row + i;
        let (source, _) = aux.all_pairs_terminals(NodeId::new(s));
        workspace.run(aux.graph(), source, &mut queue);
        total_settled += workspace.stats().settled;
        for (t, cell) in row.iter_mut().enumerate() {
            *cell = if s == t {
                Cost::ZERO
            } else {
                let (_, sink) = aux.all_pairs_terminals(NodeId::new(t));
                workspace.dist()[sink]
            };
        }
    }
    total_settled
}

/// Run-time heap dispatch for [`solve_rows`].
fn solve_rows_with(
    kind: HeapKind,
    aux: &AuxiliaryGraph,
    first_row: usize,
    rows: &mut [Cost],
    n: usize,
) -> usize {
    match kind {
        HeapKind::Fibonacci => solve_rows::<FibonacciHeap<Cost>>(aux, first_row, rows, n),
        HeapKind::Pairing => solve_rows::<PairingHeap<Cost>>(aux, first_row, rows, n),
        HeapKind::Binary => solve_rows::<BinaryHeap<Cost>>(aux, first_row, rows, n),
        HeapKind::Array => solve_rows::<ArrayHeap<Cost>>(aux, first_row, rows, n),
        HeapKind::Skew => solve_rows::<SkewHeap<Cost>>(aux, first_row, rows, n),
        HeapKind::Leftist => solve_rows::<LeftistHeap<Cost>>(aux, first_row, rows, n),
    }
}

/// All-pairs solver that *retains* every shortest-path tree, answering
/// path queries in `O(path length)` without re-running any search.
///
/// Memory is `O(n · kn)` (one tree over `G_all` per source), so this is
/// the right choice when many path queries follow — e.g. populating a
/// routing table — while [`AllPairs`] is lighter when only costs matter.
///
/// # Examples
///
/// ```
/// use wdm_core::AllPairsPaths;
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 2)])
///     .link_wavelengths(1, [(0, 3)])
///     .build()?;
/// let ap = AllPairsPaths::solve(&net);
/// let path = ap.path(0.into(), 2.into()).expect("reachable");
/// assert_eq!(path.cost(), wdm_core::Cost::new(5));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AllPairsPaths {
    aux: AuxiliaryGraph,
    trees: Vec<crate::dijkstra::ShortestPathTree>,
}

impl AllPairsPaths {
    /// Solves all pairs with the Fibonacci heap, retaining the trees.
    pub fn solve(network: &WdmNetwork) -> Self {
        Self::solve_with(network, HeapKind::Fibonacci)
    }

    /// Solves all pairs with a chosen heap, retaining the trees.
    pub fn solve_with(network: &WdmNetwork, heap: HeapKind) -> Self {
        let aux = AuxiliaryGraph::for_all_pairs(network);
        let trees = (0..network.node_count())
            .map(|s| {
                let (source, _) = aux.all_pairs_terminals(NodeId::new(s));
                dijkstra_with(heap, aux.graph(), source)
            })
            .collect();
        AllPairsPaths { aux, trees }
    }

    /// Number of sources (= network nodes).
    pub fn node_count(&self) -> usize {
        self.trees.len()
    }

    /// Optimal cost from `s` to `t` (zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn cost(&self, s: NodeId, t: NodeId) -> Cost {
        if s == t {
            return Cost::ZERO;
        }
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.trees[s.index()].dist[sink]
    }

    /// The optimal semilightpath from `s` to `t` (`None` when
    /// unreachable; the empty path on the diagonal), decoded from the
    /// retained tree without further search.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn path(&self, s: NodeId, t: NodeId) -> Option<Semilightpath> {
        if s == t {
            return Some(Semilightpath::new(Vec::new(), Cost::ZERO));
        }
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.aux.extract_semilightpath(&self.trees[s.index()], sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::{topology, DiGraph};

    fn ring_network() -> WdmNetwork {
        let g = topology::ring(5, false);
        let mut b = WdmNetwork::builder(g, 2);
        for e in 0..5 {
            b = b.link_wavelengths(e, [(e % 2, 10 + e as u64)]);
        }
        b.uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    #[test]
    fn matches_pairwise_queries() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        let router = LiangShenRouter::new();
        for s in 0..5 {
            for t in 0..5 {
                let (s, t) = (NodeId::new(s), NodeId::new(t));
                assert_eq!(
                    ap.cost(s, t),
                    router.route(&net, s, t).expect("ok").cost(),
                    "pair {s} → {t}"
                );
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        for v in 0..5 {
            assert_eq!(ap.cost(NodeId::new(v), NodeId::new(v)), Cost::ZERO);
        }
    }

    #[test]
    fn unreachable_pairs_are_infinite() {
        // Two disconnected nodes.
        let g = DiGraph::from_links(2, []);
        let net = WdmNetwork::builder(g, 1).build().expect("valid");
        let ap = AllPairs::solve(&net);
        assert_eq!(ap.cost(0.into(), 1.into()), Cost::INFINITY);
        assert_eq!(ap.cost(0.into(), 0.into()), Cost::ZERO);
    }

    #[test]
    fn heap_choice_is_cost_invariant() {
        let net = ring_network();
        let fib = AllPairs::solve_with(&net, HeapKind::Fibonacci);
        let arr = AllPairs::solve_with(&net, HeapKind::Array);
        for s in 0..5 {
            for t in 0..5 {
                assert_eq!(
                    fib.cost(NodeId::new(s), NodeId::new(t)),
                    arr.cost(NodeId::new(s), NodeId::new(t))
                );
            }
        }
    }

    #[test]
    fn all_pairs_paths_matches_costs_and_validates() {
        let net = ring_network();
        let light = AllPairs::solve(&net);
        let full = AllPairsPaths::solve(&net);
        for s in 0..5 {
            for t in 0..5 {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                assert_eq!(light.cost(sn, tn), full.cost(sn, tn), "{s} → {t}");
                match full.path(sn, tn) {
                    Some(p) => {
                        p.validate(&net).expect("valid");
                        assert_eq!(p.cost(), full.cost(sn, tn));
                    }
                    None => assert!(full.cost(sn, tn).is_infinite()),
                }
            }
        }
        assert_eq!(full.node_count(), 5);
    }

    #[test]
    fn parallel_matches_serial_for_every_thread_count() {
        let net = ring_network();
        for heap in [HeapKind::Fibonacci, HeapKind::Array] {
            let serial = AllPairs::solve_with(&net, heap);
            for threads in [0, 1, 2, 3, 5, 8, 64] {
                let parallel = AllPairs::solve_parallel(&net, heap, threads);
                assert_eq!(parallel.costs, serial.costs, "{heap} × {threads} threads");
                assert_eq!(
                    parallel.total_settled(),
                    serial.total_settled(),
                    "{heap} × {threads} threads"
                );
                assert_eq!(parallel.aux_stats(), serial.aux_stats());
                assert_eq!(parallel.node_count(), serial.node_count());
            }
        }
    }

    #[test]
    fn parallel_handles_degenerate_networks() {
        // Single node: a 1×1 matrix, nothing to search.
        let net = WdmNetwork::builder(DiGraph::from_links(1, []), 1)
            .build()
            .expect("valid");
        let ap = AllPairs::solve_parallel(&net, HeapKind::Binary, 4);
        assert_eq!(ap.cost(0.into(), 0.into()), Cost::ZERO);

        // Disconnected pair: infinities must survive the parallel path.
        let g = DiGraph::from_links(2, []);
        let net = WdmNetwork::builder(g, 1).build().expect("valid");
        let ap = AllPairs::solve_parallel(&net, HeapKind::Fibonacci, 2);
        assert_eq!(ap.cost(0.into(), 1.into()), Cost::INFINITY);
        assert_eq!(ap.cost(1.into(), 0.into()), Cost::INFINITY);
    }

    #[test]
    fn path_rederivation_validates() {
        let net = ring_network();
        let ap = AllPairs::solve(&net);
        let p = ap.path(&net, 0.into(), 3.into()).expect("reachable");
        p.validate(&net).expect("valid");
        assert_eq!(p.cost(), ap.cost(0.into(), 3.into()));
    }
}
