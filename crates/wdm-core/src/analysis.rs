//! Workload analytics over optimal routes.
//!
//! Once a routing workload is solved, network planners ask *where the
//! conversions happen* (to decide which nodes need converter hardware),
//! *which wavelengths and links carry the load*, and *how much longer
//! semilightpaths are than plain hop-count routes*. This module computes
//! those aggregates from any set of [`Semilightpath`]s.

use crate::{Cost, Semilightpath, WdmNetwork};
use wdm_graph::metrics::bfs_hops;
use wdm_graph::NodeId;

/// Aggregated statistics of a set of routes on one network.
///
/// # Examples
///
/// ```
/// use wdm_core::{analysis::WorkloadAnalysis, find_optimal_semilightpath};
/// use wdm_core::{ConversionPolicy, Cost, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let net = WdmNetwork::builder(g, 2)
///     .link_wavelengths(0, [(0, 1)])
///     .link_wavelengths(1, [(1, 1)])
///     .conversion(1, ConversionPolicy::Uniform(Cost::new(1)))
///     .build()?;
/// let path = find_optimal_semilightpath(&net, 0.into(), 2.into())?.expect("reachable");
/// let analysis = WorkloadAnalysis::of(&net, [&path]);
/// assert_eq!(analysis.conversions_at(1.into()), 1); // node 1 converted once
/// assert_eq!(analysis.total_conversions, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAnalysis {
    /// Number of analysed (non-empty) paths.
    pub path_count: usize,
    /// Total conversions over all paths.
    pub total_conversions: u64,
    /// Total links traversed over all paths.
    pub total_links: u64,
    /// Sum of path costs.
    pub total_cost: Cost,
    /// Conversions performed at each node (indexed by node).
    conversion_sites: Vec<u64>,
    /// Traversals of each wavelength (indexed by wavelength).
    wavelength_usage: Vec<u64>,
    /// Traversals of each link (indexed by link).
    link_usage: Vec<u64>,
    /// Histogram of path lengths in links (index = length).
    hop_histogram: Vec<u64>,
}

impl WorkloadAnalysis {
    /// Analyses `paths` against `network`. Empty paths are skipped.
    ///
    /// # Panics
    ///
    /// Panics if a path references links or wavelengths outside the
    /// network (validate paths first when in doubt).
    pub fn of<'a, I>(network: &WdmNetwork, paths: I) -> Self
    where
        I: IntoIterator<Item = &'a Semilightpath>,
    {
        let mut a = WorkloadAnalysis {
            path_count: 0,
            total_conversions: 0,
            total_links: 0,
            total_cost: Cost::ZERO,
            conversion_sites: vec![0; network.node_count()],
            wavelength_usage: vec![0; network.k()],
            link_usage: vec![0; network.link_count()],
            hop_histogram: Vec::new(),
        };
        for path in paths {
            if path.is_empty() {
                continue;
            }
            a.path_count += 1;
            a.total_cost += path.cost();
            a.total_links += path.len() as u64;
            if a.hop_histogram.len() <= path.len() {
                a.hop_histogram.resize(path.len() + 1, 0);
            }
            a.hop_histogram[path.len()] += 1;
            for hop in path.hops() {
                a.wavelength_usage[hop.wavelength.index()] += 1;
                a.link_usage[hop.link.index()] += 1;
            }
            for pair in path.hops().windows(2) {
                if pair[0].wavelength != pair[1].wavelength {
                    let junction = network.graph().link(pair[0].link).head();
                    a.conversion_sites[junction.index()] += 1;
                    a.total_conversions += 1;
                }
            }
        }
        a
    }

    /// Conversions performed at `node` across the workload.
    pub fn conversions_at(&self, node: NodeId) -> u64 {
        self.conversion_sites[node.index()]
    }

    /// Traversals of wavelength index `lambda`.
    pub fn wavelength_traversals(&self, lambda: usize) -> u64 {
        self.wavelength_usage[lambda]
    }

    /// Traversals of each link, indexed by link id.
    pub fn link_usage(&self) -> &[u64] {
        &self.link_usage
    }

    /// Histogram of path lengths (index = number of links).
    pub fn hop_histogram(&self) -> &[u64] {
        &self.hop_histogram
    }

    /// Mean links per path (0 for an empty workload).
    pub fn mean_hops(&self) -> f64 {
        if self.path_count == 0 {
            0.0
        } else {
            self.total_links as f64 / self.path_count as f64
        }
    }

    /// Nodes ranked by conversion usage, busiest first — the natural
    /// converter-placement priority list. Nodes with zero conversions are
    /// omitted.
    pub fn converter_placement_ranking(&self) -> Vec<(NodeId, u64)> {
        let mut ranked: Vec<(NodeId, u64)> = self
            .conversion_sites
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (NodeId::new(v), c))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

/// Mean *hop stretch* of a set of routed pairs: the ratio of the optimal
/// semilightpath's link count to the plain BFS hop distance (how much the
/// wavelength constraints lengthen routes). Pairs whose path or BFS
/// distance is unavailable are skipped; returns `None` when nothing was
/// comparable.
pub fn mean_hop_stretch(
    network: &WdmNetwork,
    pairs: &[(NodeId, NodeId, Semilightpath)],
) -> Option<f64> {
    let mut total = 0.0;
    let mut counted = 0usize;
    let mut hops_cache: std::collections::HashMap<NodeId, Vec<Option<usize>>> =
        std::collections::HashMap::new();
    for (s, t, path) in pairs {
        if path.is_empty() {
            continue;
        }
        let hops = hops_cache
            .entry(*s)
            .or_insert_with(|| bfs_hops(network.graph(), *s));
        match hops[t.index()] {
            Some(h) if h > 0 => {
                total += path.len() as f64 / h as f64;
                counted += 1;
            }
            _ => {}
        }
    }
    if counted == 0 {
        None
    } else {
        Some(total / counted as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_optimal_semilightpath, ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    /// Chain 0→1→2→3 forcing conversions at nodes 1 and 2.
    fn zigzag() -> WdmNetwork {
        let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3)]);
        WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(1, 10)])
            .link_wavelengths(2, [(2, 10)])
            .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    #[test]
    fn conversion_sites_are_attributed_to_junctions() {
        let net = zigzag();
        let p = find_optimal_semilightpath(&net, 0.into(), 3.into())
            .expect("ok")
            .expect("reachable");
        let a = WorkloadAnalysis::of(&net, [&p]);
        assert_eq!(a.total_conversions, 2);
        assert_eq!(a.conversions_at(1.into()), 1);
        assert_eq!(a.conversions_at(2.into()), 1);
        assert_eq!(a.conversions_at(0.into()), 0);
        assert_eq!(a.conversions_at(3.into()), 0);
        let ranking = a.converter_placement_ranking();
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].1, 1);
    }

    #[test]
    fn usage_counters_accumulate_over_paths() {
        let net = zigzag();
        let router = LiangShenRouter::new();
        let paths: Vec<_> = [(0, 3), (0, 2), (1, 3)]
            .iter()
            .map(|&(s, t)| {
                router
                    .route(&net, NodeId::new(s), NodeId::new(t))
                    .expect("ok")
                    .path
                    .expect("reachable")
            })
            .collect();
        let a = WorkloadAnalysis::of(&net, paths.iter());
        assert_eq!(a.path_count, 3);
        assert_eq!(a.total_links, 3 + 2 + 2);
        // Link 1 (1→2) is used by all three paths.
        assert_eq!(a.link_usage()[1], 3);
        // Wavelength λ1 is used once per path.
        assert_eq!(a.wavelength_traversals(1), 3);
        assert_eq!(a.hop_histogram()[2], 2);
        assert_eq!(a.hop_histogram()[3], 1);
        assert!((a.mean_hops() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_paths_are_skipped() {
        let net = zigzag();
        let empty = Semilightpath::new(Vec::new(), Cost::ZERO);
        let a = WorkloadAnalysis::of(&net, [&empty]);
        assert_eq!(a.path_count, 0);
        assert_eq!(a.total_conversions, 0);
        assert!(a.converter_placement_ranking().is_empty());
        assert_eq!(a.mean_hops(), 0.0);
    }

    #[test]
    fn hop_stretch_on_constrained_network() {
        // Direct link exists but carries no usable wavelength end-to-end;
        // the semilightpath detours, stretch > 1.
        let g = DiGraph::from_links(4, [(0, 3), (0, 1), (1, 2), (2, 3)]);
        let net = WdmNetwork::builder(g, 1)
            // Link 0 (0→3) has no wavelengths at all.
            .link_wavelengths(1, [(0, 1)])
            .link_wavelengths(2, [(0, 1)])
            .link_wavelengths(3, [(0, 1)])
            .build()
            .expect("valid");
        let p = find_optimal_semilightpath(&net, 0.into(), 3.into())
            .expect("ok")
            .expect("reachable");
        let stretch =
            mean_hop_stretch(&net, &[(NodeId::new(0), NodeId::new(3), p)]).expect("comparable");
        // BFS hop distance is 1 (the dark link still exists as topology);
        // the routed path takes 3 links.
        assert!((stretch - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hop_stretch_none_when_nothing_comparable() {
        let net = zigzag();
        assert_eq!(mean_hop_stretch(&net, &[]), None);
    }
}
