//! Per-node wavelength-conversion cost functions `c_v(λp, λq)`.

use crate::{Cost, Wavelength};
use serde::{Deserialize, Serialize};

/// A node's wavelength-conversion capability and cost function.
///
/// Models the paper's cost factors `c_v(λp, λq)`: `0` when `p = q`, `∞`
/// when the conversion is unavailable at `v`, and an arbitrary non-negative
/// cost otherwise. The enum covers the converter designs the WDM literature
/// considers while keeping instances `Clone`/`Serialize`-able; the
/// [`ConversionPolicy::Matrix`] variant expresses the paper's fully general
/// node- and wavelength-dependent cost.
///
/// # Examples
///
/// ```
/// use wdm_core::{ConversionPolicy, Cost, Wavelength};
///
/// let uniform = ConversionPolicy::Uniform(Cost::new(5));
/// let (a, b) = (Wavelength::new(0), Wavelength::new(3));
/// assert_eq!(uniform.cost(a, a), Cost::ZERO);
/// assert_eq!(uniform.cost(a, b), Cost::new(5));
///
/// let banded = ConversionPolicy::Banded { radius: 2, base: Cost::new(1), slope: Cost::new(2) };
/// assert_eq!(banded.cost(a, Wavelength::new(2)), Cost::new(5)); // 1 + 2·2
/// assert_eq!(banded.cost(a, b), Cost::INFINITY);                // |0-3| > 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConversionPolicy {
    /// No converter: only `λ → λ` pass-through is possible.
    Forbidden,
    /// A full-range converter with zero cost.
    Free,
    /// A full-range converter with a fixed per-conversion cost.
    Uniform(Cost),
    /// A limited-range converter: `λp → λq` is possible iff
    /// `|p - q| <= radius`, costing `base + slope·|p - q|`.
    Banded {
        /// Maximum spectral distance the converter can bridge.
        radius: usize,
        /// Fixed cost of any conversion.
        base: Cost,
        /// Additional cost per unit of spectral distance.
        slope: Cost,
    },
    /// Fully general per-pair costs (the paper's `c_v`).
    Matrix(ConversionMatrix),
}

impl Default for ConversionPolicy {
    /// Defaults to [`ConversionPolicy::Forbidden`] (no converter), the
    /// cheapest node hardware.
    fn default() -> Self {
        ConversionPolicy::Forbidden
    }
}

impl ConversionPolicy {
    /// The conversion cost `c_v(from, to)`.
    ///
    /// Always `Cost::ZERO` when `from == to` (the paper's
    /// `c_v(λp, λp) = 0`), regardless of the policy.
    pub fn cost(&self, from: Wavelength, to: Wavelength) -> Cost {
        if from == to {
            return Cost::ZERO;
        }
        match self {
            ConversionPolicy::Forbidden => Cost::INFINITY,
            ConversionPolicy::Free => Cost::ZERO,
            ConversionPolicy::Uniform(c) => *c,
            ConversionPolicy::Banded {
                radius,
                base,
                slope,
            } => {
                let d = from.distance(to);
                if d <= *radius {
                    *base + slope.saturating_mul(d as u64)
                } else {
                    Cost::INFINITY
                }
            }
            ConversionPolicy::Matrix(m) => m.cost(from, to),
        }
    }

    /// Returns `true` if the conversion `from → to` is possible
    /// (finite cost).
    pub fn allows(&self, from: Wavelength, to: Wavelength) -> bool {
        self.cost(from, to).is_finite()
    }
}

/// A dense `k × k` matrix of conversion costs for one node.
///
/// Entry `(p, q)` is `c_v(λp, λq)`; the diagonal is forced to zero and
/// off-diagonal entries default to [`Cost::INFINITY`] until set.
///
/// # Examples
///
/// ```
/// use wdm_core::{ConversionMatrix, Cost, Wavelength};
///
/// let mut m = ConversionMatrix::forbidden(3);
/// m.set(Wavelength::new(0), Wavelength::new(1), Cost::new(4));
/// assert_eq!(m.cost(Wavelength::new(0), Wavelength::new(1)), Cost::new(4));
/// assert_eq!(m.cost(Wavelength::new(1), Wavelength::new(0)), Cost::INFINITY);
/// assert_eq!(m.cost(Wavelength::new(2), Wavelength::new(2)), Cost::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionMatrix {
    k: usize,
    /// Row-major `k × k` costs; the diagonal is ignored (always zero).
    costs: Vec<Cost>,
}

impl ConversionMatrix {
    /// A matrix where every off-diagonal conversion is forbidden.
    pub fn forbidden(k: usize) -> Self {
        Self::filled(k, Cost::INFINITY)
    }

    /// A matrix where every conversion costs `uniform`.
    pub fn uniform(k: usize, uniform: Cost) -> Self {
        Self::filled(k, uniform)
    }

    /// Fills every off-diagonal cell with `value`; the diagonal is stored
    /// as zero so that structurally equal matrices compare equal.
    fn filled(k: usize, value: Cost) -> Self {
        let mut costs = vec![value; k * k];
        debug_assert!(costs.len() == k * k, "conversion matrix is k x k");
        for i in 0..k {
            costs[i * k + i] = Cost::ZERO;
        }
        ConversionMatrix { k, costs }
    }

    /// Universe size `k`.
    pub fn universe(&self) -> usize {
        self.k
    }

    /// Sets `c_v(from, to) = cost`.
    ///
    /// # Panics
    ///
    /// Panics if either wavelength is outside the universe, or if
    /// `from == to` with a non-zero cost (the model fixes the diagonal at
    /// zero).
    pub fn set(&mut self, from: Wavelength, to: Wavelength, cost: Cost) {
        assert!(
            from.index() < self.k && to.index() < self.k,
            "wavelength outside universe"
        );
        if from == to {
            assert_eq!(
                cost,
                Cost::ZERO,
                "diagonal conversion cost is fixed at zero"
            );
            return;
        }
        self.costs[from.index() * self.k + to.index()] = cost;
    }

    /// Reads `c_v(from, to)` (zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either wavelength is outside the universe.
    pub fn cost(&self, from: Wavelength, to: Wavelength) -> Cost {
        assert!(
            from.index() < self.k && to.index() < self.k,
            "wavelength outside universe"
        );
        if from == to {
            Cost::ZERO
        } else {
            self.costs[from.index() * self.k + to.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> Wavelength {
        Wavelength::new(i)
    }

    #[allow(non_snake_case)]
    fn A() -> Wavelength {
        w(0)
    }
    #[allow(non_snake_case)]
    fn B() -> Wavelength {
        w(1)
    }
    #[allow(non_snake_case)]
    fn C() -> Wavelength {
        w(2)
    }

    #[test]
    fn forbidden_only_passes_through() {
        let p = ConversionPolicy::Forbidden;
        assert_eq!(p.cost(A(), A()), Cost::ZERO);
        assert_eq!(p.cost(A(), B()), Cost::INFINITY);
        assert!(!p.allows(A(), B()));
        assert!(p.allows(A(), A()));
    }

    #[test]
    fn free_and_uniform() {
        assert_eq!(ConversionPolicy::Free.cost(A(), B()), Cost::ZERO);
        assert_eq!(
            ConversionPolicy::Uniform(Cost::new(9)).cost(A(), B()),
            Cost::new(9)
        );
        assert_eq!(
            ConversionPolicy::Uniform(Cost::new(9)).cost(B(), B()),
            Cost::ZERO
        );
    }

    #[test]
    fn banded_respects_radius_and_slope() {
        let p = ConversionPolicy::Banded {
            radius: 1,
            base: Cost::new(2),
            slope: Cost::new(3),
        };
        assert_eq!(p.cost(A(), B()), Cost::new(5));
        assert_eq!(p.cost(B(), A()), Cost::new(5));
        assert_eq!(p.cost(A(), C()), Cost::INFINITY);
        assert_eq!(p.cost(C(), C()), Cost::ZERO);
    }

    #[test]
    fn matrix_is_directional() {
        let mut m = ConversionMatrix::forbidden(3);
        m.set(A(), C(), Cost::new(7));
        let p = ConversionPolicy::Matrix(m);
        assert_eq!(p.cost(A(), C()), Cost::new(7));
        assert_eq!(p.cost(C(), A()), Cost::INFINITY);
    }

    #[test]
    fn matrix_uniform_constructor() {
        let m = ConversionMatrix::uniform(2, Cost::new(1));
        assert_eq!(m.cost(A(), B()), Cost::new(1));
        assert_eq!(m.cost(A(), A()), Cost::ZERO);
        assert_eq!(m.universe(), 2);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn matrix_rejects_nonzero_diagonal() {
        let mut m = ConversionMatrix::forbidden(2);
        m.set(A(), A(), Cost::new(1));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn matrix_bounds_checked() {
        let m = ConversionMatrix::forbidden(2);
        m.cost(A(), C());
    }

    #[test]
    fn default_is_forbidden() {
        assert_eq!(ConversionPolicy::default(), ConversionPolicy::Forbidden);
    }
}
