//! An independent reference solver used as a test oracle.
//!
//! This is a direct state-space formulation of the optimal-semilightpath
//! problem that shares no construction code with [`crate::LiangShenRouter`]
//! or [`crate::CfzRouter`]: Dijkstra over states `(node, wavelength arrived
//! on)`, where a transition from `(v, λp)` follows an outgoing link `e` on
//! a wavelength `λq ∈ Λ(e)` at cost `c_v(λp, λq) + w(e, λq)` — exactly one
//! conversion per node visit, as Equation (1) prescribes.
//!
//! Being `O(k²·m)` in transitions it is slower than the paper's algorithm,
//! but its independence makes it the arbiter in cross-validation tests
//! (including the cases where the CFZ wavelength graph diverges from
//! Equation (1) by chaining conversions — see [`crate::CfzRouter`] docs).

use crate::{Cost, Hop, Semilightpath, WdmError, WdmNetwork};
use heaps::{BinaryHeap, IndexedPriorityQueue};
use wdm_graph::NodeId;

/// Finds an optimal semilightpath by state-space Dijkstra.
///
/// Semantics match [`crate::find_optimal_semilightpath`] exactly; only the
/// construction differs. `s == t` yields the empty path.
///
/// # Errors
///
/// [`WdmError::NodeOutOfRange`] if `s` or `t` is not a node of the network.
///
/// # Examples
///
/// ```
/// use wdm_core::{find_optimal_semilightpath, reference};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = wdm_core::WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 3)])
///     .build()?;
/// let a = reference::reference_route(&net, 0.into(), 1.into())?;
/// let b = find_optimal_semilightpath(&net, 0.into(), 1.into())?;
/// assert_eq!(a.map(|p| p.cost()), b.map(|p| p.cost()));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn reference_route(
    network: &WdmNetwork,
    s: NodeId,
    t: NodeId,
) -> Result<Option<Semilightpath>, WdmError> {
    let n = network.node_count();
    let k = network.k();
    for v in [s, t] {
        if v.index() >= n {
            return Err(WdmError::NodeOutOfRange { node: v, n });
        }
    }
    if s == t {
        return Ok(Some(Semilightpath::new(Vec::new(), Cost::ZERO)));
    }

    // State encoding: node * k + wavelength-arrived-on. A virtual start
    // state (id = n*k) models "at s with no incoming wavelength".
    let start = n * k;
    let state_count = n * k + 1;
    let mut dist = vec![Cost::INFINITY; state_count];
    let mut parent: Vec<Option<(usize, Hop)>> = vec![None; state_count];
    let mut queue: BinaryHeap<Cost> = BinaryHeap::with_capacity(state_count);
    dist[start] = Cost::ZERO;
    queue.push(start, Cost::ZERO);

    let g = network.graph();
    while let Some((state, d)) = queue.pop_min() {
        let (node, arrived) = if state == start {
            (s, None)
        } else {
            (
                NodeId::new(state / k),
                Some(crate::Wavelength::new(state % k)),
            )
        };
        for &e in g.out_links(node) {
            for (lambda, w) in network.wavelengths_on(e).iter() {
                let conv = match arrived {
                    None => Cost::ZERO,
                    Some(from) => network.conversion_cost(node, from, lambda),
                };
                let total = d + conv + w;
                if total.is_infinite() {
                    continue;
                }
                let next = g.link(e).head().index() * k + lambda.index();
                if total < dist[next] {
                    dist[next] = total;
                    parent[next] = Some((
                        state,
                        Hop {
                            link: e,
                            wavelength: lambda,
                        },
                    ));
                    queue.push_or_decrease(next, total);
                }
            }
        }
    }

    // Best arrival state at t over all wavelengths.
    let mut best: Option<usize> = None;
    for lambda in 0..k {
        let state = t.index() * k + lambda;
        if dist[state].is_finite() && best.map(|b| dist[state] < dist[b]).unwrap_or(true) {
            best = Some(state);
        }
    }
    let Some(mut at) = best else {
        return Ok(None);
    };
    let total = dist[at];
    let mut hops = Vec::new();
    while let Some((prev, hop)) = parent[at] {
        hops.push(hop);
        at = prev;
    }
    hops.reverse();
    Ok(Some(Semilightpath::new(hops, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    #[test]
    fn agrees_with_liang_shen_on_small_instance() {
        let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 5)])
            .link_wavelengths(1, [(0, 5), (1, 3)])
            .link_wavelengths(2, [(1, 2)])
            .link_wavelengths(3, [(1, 9)])
            .link_wavelengths(4, [(0, 12)])
            .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid");
        let router = LiangShenRouter::new();
        for s in 0..4 {
            for t in 0..4 {
                let (s, t) = (NodeId::new(s), NodeId::new(t));
                let a = reference_route(&net, s, t).expect("ok").map(|p| p.cost());
                let b = router.route(&net, s, t).expect("ok").path.map(|p| p.cost());
                assert_eq!(a, b, "pair {s} → {t}");
            }
        }
    }

    #[test]
    fn reference_paths_validate() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 1)])
            .link_wavelengths(1, [(1, 1)])
            .uniform_conversion(ConversionPolicy::Free)
            .build()
            .expect("valid");
        let p = reference_route(&net, 0.into(), 2.into())
            .expect("ok")
            .expect("reachable");
        p.validate(&net).expect("valid");
        assert_eq!(p.cost(), Cost::new(2));
    }

    #[test]
    fn unreachable_and_trivial() {
        let g = DiGraph::from_links(2, [(1, 0)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 1)])
            .build()
            .expect("valid");
        assert!(reference_route(&net, 0.into(), 1.into())
            .expect("ok")
            .is_none());
        let p = reference_route(&net, 1.into(), 1.into())
            .expect("ok")
            .expect("trivial");
        assert!(p.is_empty());
        assert!(matches!(
            reference_route(&net, 0.into(), 5.into()),
            Err(WdmError::NodeOutOfRange { .. })
        ));
    }
}
