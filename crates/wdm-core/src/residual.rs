//! Persistent residual routing: the auxiliary graph built once, searched
//! many times through an in-place edge mask.
//!
//! The provisioning hot loop of a dynamic-traffic RWA system answers one
//! question per request — "cheapest semilightpath on the *residual*
//! network" — while the residual network differs from the base only in
//! which (link, wavelength) pairs are currently occupied. Rebuilding
//! `G_{s,t}` per request costs the full Theorem-1 construction,
//! `O(k²n + km)`, plus the allocator traffic of a network clone. This
//! module instead builds the terminal-equipped all-pairs graph `G_all`
//! (Corollary 1) **once** and represents occupancy as an [`EdgeMask`] over
//! its traversal edges: acquiring or releasing a resource flips one bit,
//! and a request is answered by a single masked Dijkstra over the
//! persistent structure, allocation-free after warm-up.
//!
//! # Why masking a traversal edge is exactly residual routing
//!
//! Occupying `(e, λ)` removes exactly one edge from the paper's
//! wavelength-expanded multigraph `G_M`, which corresponds one-to-one to
//! the traversal edge `y_u(λ) → x_v(λ)` of `G'`. Conversion gadgets and
//! terminal taps never depend on availability, so the residual `G'` is the
//! persistent `G'` minus masked traversal edges. The masked graph retains
//! aux nodes whose wavelengths vanished from the residual Λ-sets, but such
//! nodes are dead ends (every edge that made them useful is masked) and
//! can never lie on a cheapest path, hence distances and blocked verdicts
//! match a from-scratch rebuild. A full rebuild is still required when the
//! *base* network changes — topology edits, added wavelengths, or altered
//! conversion policies — because those change the node set itself.
//!
//! # Sharing across threads
//!
//! The structure splits into two halves:
//!
//! * [`ResidualState`] — the graphs, busy masks, and (link, λ) index.
//!   Routing and reachability probes take `&self`; busy flips come in an
//!   exclusive flavour (`&mut self`, plain word ops — the
//!   single-threaded hot path) and a shared flavour
//!   ([`try_acquire_shared`](ResidualState::try_acquire_shared) /
//!   [`release_shared`](ResidualState::release_shared), atomic RMWs for
//!   the concurrent engine, which layers its own conflict protocol on
//!   top).
//! * [`SearchScratch`] — the per-thread Dijkstra workspace, heap, and
//!   probe masks. One per searching thread; never shared.
//!
//! [`PersistentAuxGraph`] bundles one of each behind the original
//! single-threaded API, so existing callers are untouched.

use crate::auxiliary::AuxiliaryGraph;
use crate::csr::{CsrBuilder, CsrGraph, EdgeMask, EdgeRole};
use crate::dijkstra::DijkstraWorkspace;
use crate::{Cost, Hop, Semilightpath, Wavelength, WdmNetwork};
use heaps::{BinaryHeap, IndexedPriorityQueue};
use wdm_graph::{LinkId, NodeId};

/// One per-wavelength view of the physical topology: the subgraph of links
/// carrying `λ`, with its own busy mask. Lets single-wavelength (lightpath)
/// policies go rebuild-free too.
#[derive(Debug, Clone)]
struct LambdaGraph {
    graph: CsrGraph,
    mask: EdgeMask,
    /// Dense edge index per link (`u32::MAX` when the link lacks this λ).
    edge_of_link: Vec<u32>,
}

const NO_EDGE: u32 = u32::MAX;

/// Outcome of a shared-mode resource acquisition
/// ([`ResidualState::try_acquire_shared`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The caller won the flip: the resource was free and is now busy,
    /// owned by the caller.
    Acquired,
    /// The resource was already busy (another owner holds it).
    Busy,
    /// The base network does not carry this wavelength on this link;
    /// nothing was changed.
    NoSuchResource,
}

/// The shareable half of the persistent residual structure: `G_all`
/// ([`AuxiliaryGraph::for_all_pairs`]), one per-wavelength link graph,
/// and the busy masks, with a (link, λ) → traversal-edge index.
///
/// All routing queries take `&self` plus a caller-owned
/// [`SearchScratch`], so any number of threads may search one state
/// concurrently while flipping busy bits through the shared-mode
/// methods. Consistency across multiple bits is the caller's protocol —
/// see `wdm_obs::ordering` for the seqlock audit the concurrent engine
/// builds on.
#[derive(Debug, Clone)]
pub struct ResidualState {
    aux: AuxiliaryGraph,
    /// Busy mask over the aux graph's edges (only traversal bits are set).
    mask: EdgeMask,
    /// Per link, sorted by wavelength: the aux traversal edge for
    /// `(link, λ)`.
    aux_edge: Vec<Vec<(Wavelength, u32)>>,
    lambda: Vec<LambdaGraph>,
}

/// The per-thread half: a reusable [`DijkstraWorkspace`]+heap pair and
/// lazily sized probe masks, so that after warm-up a request costs one
/// heap-driven Dijkstra and zero structural work.
///
/// The indexed binary heap wins over the Theorem-1 Fibonacci heap here:
/// per-request graphs are mid-sized, so the flat sift beats pointer
/// chasing, and it matches the legacy lightpath routine's heap for the
/// per-wavelength searches.
#[derive(Debug, Clone)]
pub struct SearchScratch {
    ws: DijkstraWorkspace,
    heap: BinaryHeap<Cost>,
    /// All-clear mask over the aux graph used by link-excluding probes;
    /// zero-length until first use.
    probe_aux: EdgeMask,
    /// All-clear masks over the per-λ graphs for link-excluding probes;
    /// empty until first use.
    probe_lambda: Vec<EdgeMask>,
}

impl SearchScratch {
    /// Scratch sized for searches over `state`.
    pub fn for_state(state: &ResidualState) -> Self {
        let n_phys = state
            .lambda
            .first()
            .map(|lg| lg.graph.node_count())
            .unwrap_or(0);
        let cap = state.aux.graph().node_count().max(n_phys).max(1);
        SearchScratch {
            ws: DijkstraWorkspace::with_capacity(cap),
            heap: BinaryHeap::with_capacity(cap),
            probe_aux: EdgeMask::all_clear(0),
            probe_lambda: Vec::new(),
        }
    }

    /// Drains the search-operation totals accumulated by every routing
    /// call through this scratch since the last drain.
    ///
    /// The underlying [`DijkstraWorkspace`] bumps plain fields during
    /// the search, so this is the zero-hot-path handoff point between
    /// the kernels and a metrics registry: call it per request (or per
    /// flush interval) and feed the deltas into shared counters.
    pub fn take_search_totals(&mut self) -> crate::SearchStats {
        self.ws.take_totals()
    }
}

impl ResidualState {
    /// Builds the state for `base` with every resource free. This is the
    /// once-per-engine `O(k²n + km)` cost the per-request path no longer
    /// pays.
    pub fn new(base: &WdmNetwork) -> Self {
        let aux = AuxiliaryGraph::for_all_pairs(base);
        let g = aux.graph();
        let m = base.link_count();
        let n = base.node_count();

        // Index the traversal edges by (link, λ) for O(log k0) flips.
        let mut aux_edge: Vec<Vec<(Wavelength, u32)>> = vec![Vec::new(); m];
        for i in 0..g.edge_count() {
            let (_, e) = g.edge(i);
            if let EdgeRole::Traversal { link, wavelength } = e.role {
                let Ok(ei) = u32::try_from(i) else {
                    unreachable!("aux edge count fits in u32 edge handles")
                };
                aux_edge[link.index()].push((wavelength, ei));
            }
        }
        for per_link in &mut aux_edge {
            per_link.sort_by_key(|&(w, _)| w);
        }

        // One physical-topology subgraph per wavelength, mirroring the
        // legacy per-λ rebuild's edge order (link order).
        let mut lambda = Vec::with_capacity(base.k());
        for li in 0..base.k() {
            let lam = Wavelength::new(li);
            let mut b = CsrBuilder::new(n);
            for (e, l) in base.graph().links() {
                let w = base.link_cost(e, lam);
                if w.is_finite() {
                    b.add_edge(
                        l.tail().index(),
                        l.head().index(),
                        w,
                        EdgeRole::Traversal {
                            link: e,
                            wavelength: lam,
                        },
                    );
                }
            }
            let graph = b.build();
            let mut edge_of_link = vec![NO_EDGE; m];
            for i in 0..graph.edge_count() {
                let (_, e) = graph.edge(i);
                if let EdgeRole::Traversal { link, .. } = e.role {
                    let Ok(ei) = u32::try_from(i) else {
                        unreachable!("aux edge count fits in u32 edge handles")
                    };
                    edge_of_link[link.index()] = ei;
                }
            }
            let mask = EdgeMask::all_clear(graph.edge_count());
            lambda.push(LambdaGraph {
                graph,
                mask,
                edge_of_link,
            });
        }

        ResidualState {
            mask: EdgeMask::all_clear(g.edge_count()),
            aux_edge,
            lambda,
            aux,
        }
    }

    /// The persistent `G_all` structure.
    pub fn aux(&self) -> &AuxiliaryGraph {
        &self.aux
    }

    /// The base network's global wavelength count `k`.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// The aux traversal edge for `(link, λ)`, when the base carries it.
    fn aux_edge_of(&self, link: LinkId, wavelength: Wavelength) -> Option<usize> {
        let per_link = &self.aux_edge[link.index()];
        per_link
            .binary_search_by_key(&wavelength, |&(w, _)| w)
            .ok()
            .map(|pos| per_link[pos].1 as usize)
    }

    /// Marks `(link, λ)` busy (`true`) or free (`false`) in place
    /// through exclusive access — the single-threaded hot path (plain
    /// word ops, no atomic RMWs).
    ///
    /// Returns `false` — and changes nothing — when the base network does
    /// not carry `λ` on `link` (there is no corresponding traversal edge;
    /// an engine may still *account* such a pair as blocked, e.g. during a
    /// fibre cut, without consulting this structure). Setting a bit to its
    /// current value is a no-op. Either way the operation is `O(log k0)`
    /// and allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_busy(&mut self, link: LinkId, wavelength: Wavelength, busy: bool) -> bool {
        let Some(aux_idx) = self.aux_edge_of(link, wavelength) else {
            return false;
        };
        self.mask.set_to(aux_idx, busy);
        let lg = &mut self.lambda[wavelength.index()];
        let e = lg.edge_of_link[link.index()];
        debug_assert_ne!(e, NO_EDGE, "λ-graph edge exists whenever the aux edge does");
        lg.mask.set_to(e as usize, busy);
        true
    }

    /// Attempts to acquire `(link, λ)` through `&self` — the concurrent
    /// engine's flavour of [`set_busy`](Self::set_busy)`(…, true)`.
    ///
    /// On [`AcquireOutcome::Acquired`] the caller owns the resource and
    /// this call has flipped both the aux-graph bit and the λ-graph bit.
    /// The RMWs are relaxed (see `wdm_obs::ordering`): callers must
    /// bracket acquisitions with their own ordering protocol before
    /// concluding anything about *other* resources.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn try_acquire_shared(&self, link: LinkId, wavelength: Wavelength) -> AcquireOutcome {
        let Some(aux_idx) = self.aux_edge_of(link, wavelength) else {
            return AcquireOutcome::NoSuchResource;
        };
        if !self.mask.fetch_set(aux_idx) {
            return AcquireOutcome::Busy;
        }
        let lg = &self.lambda[wavelength.index()];
        let e = lg.edge_of_link[link.index()];
        debug_assert_ne!(e, NO_EDGE, "λ-graph edge exists whenever the aux edge does");
        // The caller now owns the resource, so this second flip cannot
        // race another owner of the same bit.
        lg.mask.fetch_set(e as usize);
        AcquireOutcome::Acquired
    }

    /// Releases `(link, λ)` through `&self` — the shared counterpart of
    /// [`set_busy`](Self::set_busy)`(…, false)`. Returns `false` when
    /// the base does not carry the resource (nothing changed). Releasing
    /// an already-free resource is a no-op; only the owner should call
    /// this (the concurrent engine's protocol guarantees it).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn release_shared(&self, link: LinkId, wavelength: Wavelength) -> bool {
        let Some(aux_idx) = self.aux_edge_of(link, wavelength) else {
            return false;
        };
        self.mask.fetch_clear(aux_idx);
        let lg = &self.lambda[wavelength.index()];
        let e = lg.edge_of_link[link.index()];
        debug_assert_ne!(e, NO_EDGE, "λ-graph edge exists whenever the aux edge does");
        lg.mask.fetch_clear(e as usize);
        true
    }

    /// Whether `(link, λ)` is currently masked busy.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn is_busy(&self, link: LinkId, wavelength: Wavelength) -> bool {
        match self.aux_edge_of(link, wavelength) {
            Some(idx) => self.mask.is_set(idx),
            None => false,
        }
    }

    /// Number of (link, λ) resources currently masked busy.
    pub fn busy_count(&self) -> usize {
        self.mask.set_count()
    }

    /// Frees every resource (e.g. after a full teardown).
    pub fn clear_busy(&mut self) {
        self.mask.clear_all();
        for lg in &mut self.lambda {
            lg.mask.clear_all();
        }
    }

    /// Cheapest semilightpath `s → t` on the residual network — the
    /// Theorem-1 query answered by one masked Dijkstra over the persistent
    /// `G_all`, with no construction and no allocation beyond the returned
    /// path. `s == t` yields the empty path; `None` means blocked.
    ///
    /// Costs (and blocked verdicts) are identical to routing on a freshly
    /// rebuilt residual `G_{s,t}`; see the module docs for the argument.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn route_optimal(
        &self,
        scratch: &mut SearchScratch,
        s: NodeId,
        t: NodeId,
    ) -> Option<Semilightpath> {
        if s == t {
            // An empty hop list never allocates (capacity 0).
            return Some(Semilightpath::new(Vec::default(), Cost::ZERO));
        }
        let (source, _) = self.aux.all_pairs_terminals(s);
        let (_, sink) = self.aux.all_pairs_terminals(t);
        scratch.ws.run_masked_to(
            self.aux.graph(),
            source,
            &mut scratch.heap,
            &self.mask,
            sink,
        );
        self.aux
            .extract_semilightpath_from(scratch.ws.dist(), scratch.ws.parent(), sink)
    }

    /// Whether `t` is reachable from `s` when **every** resource is
    /// free — i.e. on the unmasked persistent structure. Used to
    /// classify blocked requests: a pair that fails this probe is
    /// blocked by topology (`no_path`), anything else by occupancy.
    ///
    /// `s == t` is trivially reachable. The probe's search work is
    /// accumulated into the totals like any other run; callers that
    /// only meter hot-path searches should drain totals before probing
    /// and discard the probe's delta.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free(&self, scratch: &mut SearchScratch, s: NodeId, t: NodeId) -> bool {
        if s == t {
            return true;
        }
        let (source, _) = self.aux.all_pairs_terminals(s);
        let (_, sink) = self.aux.all_pairs_terminals(t);
        scratch
            .ws
            .run_to(self.aux.graph(), source, &mut scratch.heap, sink);
        scratch.ws.dist()[sink].is_finite()
    }

    /// Like [`reachable_when_free`](Self::reachable_when_free) but with
    /// every wavelength of each link in `excluded` unavailable — the
    /// probe behind failed-link-aware blocked-cause classification:
    /// while fibres are cut, a pair whose only free-network routes
    /// crossed one of them is blocked by topology, not capacity.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or any excluded link is out of range.
    pub fn reachable_when_free_excluding(
        &self,
        scratch: &mut SearchScratch,
        s: NodeId,
        t: NodeId,
        excluded: &[LinkId],
    ) -> bool {
        if s == t {
            return true;
        }
        if scratch.probe_aux.len() != self.aux.graph().edge_count() {
            scratch.probe_aux = EdgeMask::all_clear(self.aux.graph().edge_count());
        }
        for link in excluded {
            for &(_, idx) in &self.aux_edge[link.index()] {
                scratch.probe_aux.set(idx as usize);
            }
        }
        let (source, _) = self.aux.all_pairs_terminals(s);
        let (_, sink) = self.aux.all_pairs_terminals(t);
        scratch.ws.run_masked_to(
            self.aux.graph(),
            source,
            &mut scratch.heap,
            &scratch.probe_aux,
            sink,
        );
        let reachable = scratch.ws.dist()[sink].is_finite();
        for link in excluded {
            for &(_, idx) in &self.aux_edge[link.index()] {
                scratch.probe_aux.clear(idx as usize);
            }
        }
        reachable
    }

    /// Whether some **single** wavelength connects `s` to `t` when every
    /// resource is free — the no-conversion counterpart of
    /// [`reachable_when_free`](Self::reachable_when_free), matching what
    /// first-fit / lightpath-only policies could ever route.
    ///
    /// `s == t` returns `false`, mirroring
    /// [`route_single_wavelength`](Self::route_single_wavelength).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free_single_wavelength(
        &self,
        scratch: &mut SearchScratch,
        s: NodeId,
        t: NodeId,
    ) -> bool {
        if s == t {
            return false;
        }
        for lg in &self.lambda {
            scratch
                .ws
                .run_to(&lg.graph, s.index(), &mut scratch.heap, t.index());
            if scratch.ws.dist()[t.index()].is_finite() {
                return true;
            }
        }
        false
    }

    /// The single-wavelength counterpart of
    /// [`reachable_when_free_excluding`](Self::reachable_when_free_excluding).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or any excluded link is out of range.
    pub fn reachable_when_free_single_wavelength_excluding(
        &self,
        scratch: &mut SearchScratch,
        s: NodeId,
        t: NodeId,
        excluded: &[LinkId],
    ) -> bool {
        if s == t {
            return false;
        }
        if scratch.probe_lambda.len() != self.lambda.len() {
            scratch.probe_lambda = self
                .lambda
                .iter()
                .map(|lg| EdgeMask::all_clear(lg.graph.edge_count()))
                .collect();
        }
        for (lg, probe) in self.lambda.iter().zip(&mut scratch.probe_lambda) {
            for link in excluded {
                let e = lg.edge_of_link[link.index()];
                if e != NO_EDGE {
                    probe.set(e as usize);
                }
            }
            scratch
                .ws
                .run_masked_to(&lg.graph, s.index(), &mut scratch.heap, probe, t.index());
            let reachable = scratch.ws.dist()[t.index()].is_finite();
            for link in excluded {
                let e = lg.edge_of_link[link.index()];
                if e != NO_EDGE {
                    probe.clear(e as usize);
                }
            }
            if reachable {
                return true;
            }
        }
        false
    }

    /// Cheapest single-wavelength path `s → t` on wavelength `lambda` of
    /// the residual network (the lightpath-only building block). Mirrors
    /// the legacy per-λ rebuild exactly, including returning `None` for
    /// `s == t`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or `lambda` is out of range.
    pub fn route_single_wavelength(
        &self,
        scratch: &mut SearchScratch,
        s: NodeId,
        t: NodeId,
        lambda: Wavelength,
    ) -> Option<Semilightpath> {
        if s == t {
            return None;
        }
        let lg = &self.lambda[lambda.index()];
        scratch
            .ws
            .run_masked_to(&lg.graph, s.index(), &mut scratch.heap, &lg.mask, t.index());
        let total = scratch.ws.dist()[t.index()];
        if total.is_infinite() {
            return None;
        }
        // One exact allocation for the returned path; the search itself
        // runs entirely in `scratch`.
        let mut hops = Vec::with_capacity(8);
        let mut at = t.index();
        while let Some((prev, edge_idx)) = scratch.ws.parent()[at] {
            let (_, edge) = lg.graph.edge(edge_idx);
            if let EdgeRole::Traversal { link, wavelength } = edge.role {
                hops.push(Hop { link, wavelength });
            }
            at = prev;
        }
        hops.reverse();
        Some(Semilightpath::new(hops, total))
    }
}

/// The persistent, maskable residual-routing structure for one base
/// network: one [`ResidualState`] bundled with one [`SearchScratch`]
/// behind a single-threaded API. After construction a request costs one
/// heap-driven Dijkstra and zero structural work.
///
/// Multi-threaded users split the halves instead: share the state (the
/// concurrent engine wraps it in an `Arc`) and give each thread its own
/// scratch via [`SearchScratch::for_state`].
///
/// # Examples
///
/// ```
/// use wdm_core::{Cost, PersistentAuxGraph, WdmNetwork, Wavelength};
/// use wdm_graph::{DiGraph, LinkId};
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let mut residual = PersistentAuxGraph::new(&net);
/// let p = residual.route_optimal(0.into(), 1.into()).expect("free");
/// assert_eq!(p.cost(), Cost::new(4));
/// residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
/// assert!(residual.route_optimal(0.into(), 1.into()).is_none());
/// residual.set_busy(LinkId::new(0), Wavelength::new(0), false);
/// assert!(residual.route_optimal(0.into(), 1.into()).is_some());
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PersistentAuxGraph {
    state: ResidualState,
    scratch: SearchScratch,
}

impl PersistentAuxGraph {
    /// Builds the persistent structure for `base` with every resource
    /// free. This is the once-per-engine `O(k²n + km)` cost the per-request
    /// path no longer pays.
    pub fn new(base: &WdmNetwork) -> Self {
        let state = ResidualState::new(base);
        let scratch = SearchScratch::for_state(&state);
        PersistentAuxGraph { state, scratch }
    }

    /// The shareable state half, e.g. to seed a concurrent engine.
    pub fn state(&self) -> &ResidualState {
        &self.state
    }

    /// Consumes the bundle, yielding the state half (the scratch is
    /// rebuilt per thread via [`SearchScratch::for_state`]).
    pub fn into_state(self) -> ResidualState {
        self.state
    }

    /// Borrows both halves at once, for callers that route through the
    /// state API directly while holding the bundle.
    pub fn split_mut(&mut self) -> (&ResidualState, &mut SearchScratch) {
        (&self.state, &mut self.scratch)
    }

    /// The persistent `G_all` structure.
    pub fn aux(&self) -> &AuxiliaryGraph {
        self.state.aux()
    }

    /// The base network's global wavelength count `k`.
    pub fn k(&self) -> usize {
        self.state.k()
    }

    /// Marks `(link, λ)` busy (`true`) or free (`false`) in place; see
    /// [`ResidualState::set_busy`].
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_busy(&mut self, link: LinkId, wavelength: Wavelength, busy: bool) -> bool {
        self.state.set_busy(link, wavelength, busy)
    }

    /// Whether `(link, λ)` is currently masked busy.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn is_busy(&self, link: LinkId, wavelength: Wavelength) -> bool {
        self.state.is_busy(link, wavelength)
    }

    /// Number of (link, λ) resources currently masked busy.
    pub fn busy_count(&self) -> usize {
        self.state.busy_count()
    }

    /// Frees every resource (e.g. after a full teardown).
    pub fn clear_busy(&mut self) {
        self.state.clear_busy();
    }

    /// Cheapest semilightpath `s → t` on the residual network; see
    /// [`ResidualState::route_optimal`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn route_optimal(&mut self, s: NodeId, t: NodeId) -> Option<Semilightpath> {
        self.state.route_optimal(&mut self.scratch, s, t)
    }

    /// Drains the search-operation totals accumulated by every routing
    /// call (optimal and per-λ alike) since the last drain; see
    /// [`SearchScratch::take_search_totals`].
    pub fn take_search_totals(&mut self) -> crate::SearchStats {
        self.scratch.take_search_totals()
    }

    /// Free-network reachability probe; see
    /// [`ResidualState::reachable_when_free`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free(&mut self, s: NodeId, t: NodeId) -> bool {
        self.state.reachable_when_free(&mut self.scratch, s, t)
    }

    /// Single-wavelength free-network reachability probe; see
    /// [`ResidualState::reachable_when_free_single_wavelength`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free_single_wavelength(&mut self, s: NodeId, t: NodeId) -> bool {
        self.state
            .reachable_when_free_single_wavelength(&mut self.scratch, s, t)
    }

    /// Cheapest single-wavelength path on `lambda`; see
    /// [`ResidualState::route_single_wavelength`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or `lambda` is out of range.
    pub fn route_single_wavelength(
        &mut self,
        s: NodeId,
        t: NodeId,
        lambda: Wavelength,
    ) -> Option<Semilightpath> {
        self.state
            .route_single_wavelength(&mut self.scratch, s, t, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    /// 0 → 1 → 2 chain, two wavelengths everywhere, cheap conversion.
    fn chain() -> WdmNetwork {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10), (1, 12)])
            .link_wavelengths(1, [(0, 10), (1, 12)])
            .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    /// Routes on a freshly restricted clone — the legacy rebuild path.
    fn legacy_route(
        net: &WdmNetwork,
        busy: &[(usize, usize)],
        s: NodeId,
        t: NodeId,
    ) -> Option<Semilightpath> {
        let residual = net.restrict(|link, w| {
            !busy
                .iter()
                .any(|&(l, lam)| link.index() == l && w.index() == lam)
        });
        LiangShenRouter::new().route(&residual, s, t).ok()?.path
    }

    #[test]
    fn masked_route_matches_legacy_rebuild_costs() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let busy_sets: [&[(usize, usize)]; 4] = [
            &[],
            &[(0, 0)],
            &[(0, 0), (1, 1)],
            &[(0, 0), (0, 1)], // link 0 fully busy → blocked
        ];
        for busy in busy_sets {
            residual.clear_busy();
            for &(l, lam) in busy {
                assert!(residual.set_busy(LinkId::new(l), Wavelength::new(lam), true));
            }
            for (s, t) in [(0, 2), (0, 1), (1, 2), (2, 0)] {
                let masked = residual.route_optimal(NodeId::new(s), NodeId::new(t));
                let legacy = legacy_route(&net, busy, NodeId::new(s), NodeId::new(t));
                match (&masked, &legacy) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.cost(), b.cost(), "{busy:?} {s}->{t}");
                        a.validate(&net.restrict(|link, w| {
                            !busy
                                .iter()
                                .any(|&(l, lam)| link.index() == l && w.index() == lam)
                        }))
                        .expect("valid on residual");
                    }
                    (None, None) => {}
                    other => panic!("blocked-verdict mismatch for {busy:?} {s}->{t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn flips_are_idempotent_and_reversible() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let link = LinkId::new(0);
        let lam = Wavelength::new(0);
        assert!(!residual.is_busy(link, lam));
        assert!(residual.set_busy(link, lam, true));
        assert!(residual.set_busy(link, lam, true), "idempotent set is ok");
        assert!(residual.is_busy(link, lam));
        assert_eq!(residual.busy_count(), 1);
        assert!(residual.set_busy(link, lam, false));
        assert_eq!(residual.busy_count(), 0);
        let before = residual.route_optimal(0.into(), 2.into()).expect("free");
        assert_eq!(before.cost(), Cost::new(20));
    }

    #[test]
    fn shared_acquire_matches_exclusive_set_busy() {
        let net = chain();
        let mut exclusive = PersistentAuxGraph::new(&net);
        let shared = ResidualState::new(&net);
        let mut scratch = SearchScratch::for_state(&shared);
        let link = LinkId::new(0);
        let lam = Wavelength::new(0);
        assert_eq!(
            shared.try_acquire_shared(link, lam),
            AcquireOutcome::Acquired
        );
        assert_eq!(shared.try_acquire_shared(link, lam), AcquireOutcome::Busy);
        exclusive.set_busy(link, lam, true);
        // Same busy state → same routes, both flavours.
        for (s, t) in [(0, 2), (0, 1), (1, 2)] {
            let a = exclusive.route_optimal(NodeId::new(s), NodeId::new(t));
            let b = shared.route_optimal(&mut scratch, NodeId::new(s), NodeId::new(t));
            assert_eq!(a.map(|p| p.cost()), b.map(|p| p.cost()), "{s}->{t}");
        }
        assert!(shared.release_shared(link, lam));
        assert_eq!(shared.busy_count(), 0);
        // Absent resources are reported, not flipped.
        let g = DiGraph::from_links(2, [(0, 1)]);
        let sparse = WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(1, 5)])
            .build()
            .expect("valid");
        let st = ResidualState::new(&sparse);
        assert_eq!(
            st.try_acquire_shared(LinkId::new(0), Wavelength::new(0)),
            AcquireOutcome::NoSuchResource
        );
        assert!(!st.release_shared(LinkId::new(0), Wavelength::new(2)));
    }

    #[test]
    fn excluding_probes_mask_only_the_excluded_link() {
        let net = chain();
        let state = ResidualState::new(&net);
        let mut scratch = SearchScratch::for_state(&state);
        // Free network: 0 → 2 reachable, also on a single wavelength.
        assert!(state.reachable_when_free(&mut scratch, 0.into(), 2.into()));
        assert!(state.reachable_when_free_single_wavelength(&mut scratch, 0.into(), 2.into()));
        // Excluding the only middle link cuts 0 → 2 but not 0 → 1.
        let cut = [LinkId::new(1)];
        assert!(!state.reachable_when_free_excluding(&mut scratch, 0.into(), 2.into(), &cut));
        assert!(state.reachable_when_free_excluding(&mut scratch, 0.into(), 1.into(), &cut));
        assert!(!state.reachable_when_free_single_wavelength_excluding(
            &mut scratch,
            0.into(),
            2.into(),
            &cut
        ));
        assert!(state.reachable_when_free_single_wavelength_excluding(
            &mut scratch,
            0.into(),
            1.into(),
            &cut
        ));
        // An empty exclusion set degenerates to the plain probe; a
        // multi-link set masks every listed link at once.
        assert!(state.reachable_when_free_excluding(&mut scratch, 0.into(), 2.into(), &[]));
        assert!(!state.reachable_when_free_excluding(
            &mut scratch,
            0.into(),
            1.into(),
            &[LinkId::new(0), LinkId::new(1)]
        ));
        // The probe masks are scratch-local and restored after each call:
        // the same probes answer identically a second time, and normal
        // routing still sees a fully free network.
        assert!(!state.reachable_when_free_excluding(&mut scratch, 0.into(), 2.into(), &cut));
        assert!(state
            .route_optimal(&mut scratch, 0.into(), 2.into())
            .is_some());
        assert_eq!(state.busy_count(), 0);
    }

    #[test]
    fn absent_wavelength_flip_is_a_reported_no_op() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(1, 5)])
            .build()
            .expect("valid");
        let mut residual = PersistentAuxGraph::new(&net);
        // λ0 and λ2 are not carried by link 0: flips report false and
        // leave routing untouched (a fibre-cut engine may mark all k).
        assert!(!residual.set_busy(LinkId::new(0), Wavelength::new(0), true));
        assert!(!residual.set_busy(LinkId::new(0), Wavelength::new(2), true));
        assert_eq!(residual.busy_count(), 0);
        assert!(residual.route_optimal(0.into(), 1.into()).is_some());
    }

    #[test]
    fn single_wavelength_routes_respect_masks() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let p = residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(0))
            .expect("λ0 free");
        assert_eq!(p.cost(), Cost::new(20));
        assert!(p.is_lightpath());
        residual.set_busy(LinkId::new(1), Wavelength::new(0), true);
        assert!(residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(0))
            .is_none());
        let alt = residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(1))
            .expect("λ1 free");
        assert_eq!(alt.cost(), Cost::new(24));
        // s == t mirrors the legacy routine's None.
        assert!(residual
            .route_single_wavelength(1.into(), 1.into(), Wavelength::new(0))
            .is_none());
    }

    #[test]
    fn trivial_and_blocked_queries() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let empty = residual.route_optimal(1.into(), 1.into()).expect("s == t");
        assert!(empty.is_empty());
        assert_eq!(empty.cost(), Cost::ZERO);
        // 2 has no outgoing links.
        assert!(residual.route_optimal(2.into(), 0.into()).is_none());
    }

    #[test]
    fn search_totals_accumulate_across_requests_and_drain() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        assert_eq!(residual.take_search_totals(), Default::default());
        residual.route_optimal(0.into(), 2.into()).expect("free");
        let one = residual.take_search_totals();
        assert!(one.settled > 0 && one.relaxed > 0 && one.pushes > 0);
        // Two identical requests cost exactly twice one request.
        residual.route_optimal(0.into(), 2.into()).expect("free");
        residual.route_optimal(0.into(), 2.into()).expect("free");
        let mut twice = crate::SearchStats::default();
        twice.accumulate(&one);
        twice.accumulate(&one);
        assert_eq!(residual.take_search_totals(), twice);
        // Masked searches report their skips.
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        residual.route_optimal(0.into(), 2.into()).expect("λ1 free");
        assert!(residual.take_search_totals().masked_skips > 0);
        // s == t short-circuits without touching the kernels.
        residual.route_optimal(1.into(), 1.into()).expect("trivial");
        assert_eq!(residual.take_search_totals(), Default::default());
    }

    #[test]
    fn free_reachability_ignores_masks() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        // Saturate link 0 completely: routing blocks, but the free
        // topology still connects 0 → 2.
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        residual.set_busy(LinkId::new(0), Wavelength::new(1), true);
        assert!(residual.route_optimal(0.into(), 2.into()).is_none());
        assert!(residual.reachable_when_free(0.into(), 2.into()));
        // Node 2 has no outgoing links: blocked by topology.
        assert!(!residual.reachable_when_free(2.into(), 0.into()));
        assert!(residual.reachable_when_free(1.into(), 1.into()));
    }

    #[test]
    fn clone_preserves_mask_state() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        let mut copy = residual.clone();
        assert!(copy.is_busy(LinkId::new(0), Wavelength::new(0)));
        assert_eq!(
            copy.route_optimal(0.into(), 2.into()).map(|p| p.cost()),
            residual.route_optimal(0.into(), 2.into()).map(|p| p.cost())
        );
    }

    #[test]
    fn concurrent_search_while_flipping_is_memory_safe() {
        // Two searcher threads route while a flipper thread toggles a
        // resource: every observed outcome must be one of the two legal
        // states (λ0 busy or free), never a torn hybrid.
        let net = chain();
        let state = ResidualState::new(&net);
        let link = LinkId::new(0);
        let lam = Wavelength::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut scratch = SearchScratch::for_state(&state);
                    for _ in 0..200 {
                        let p = state.route_optimal(&mut scratch, 0.into(), 2.into());
                        let cost = p.expect("λ1 always free").cost();
                        assert!(
                            cost == Cost::new(20) || cost == Cost::new(24) || cost == Cost::new(23),
                            "cost {cost:?} must come from a legal mask state"
                        );
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..200 {
                    if state.try_acquire_shared(link, lam) == AcquireOutcome::Acquired {
                        state.release_shared(link, lam);
                    }
                }
            });
        });
        assert!(!state.is_busy(link, lam) || state.busy_count() <= 1);
    }
}
