//! Persistent residual routing: the auxiliary graph built once, searched
//! many times through an in-place edge mask.
//!
//! The provisioning hot loop of a dynamic-traffic RWA system answers one
//! question per request — "cheapest semilightpath on the *residual*
//! network" — while the residual network differs from the base only in
//! which (link, wavelength) pairs are currently occupied. Rebuilding
//! `G_{s,t}` per request costs the full Theorem-1 construction,
//! `O(k²n + km)`, plus the allocator traffic of a network clone. This
//! module instead builds the terminal-equipped all-pairs graph `G_all`
//! (Corollary 1) **once** and represents occupancy as an [`EdgeMask`] over
//! its traversal edges: acquiring or releasing a resource flips one bit,
//! and a request is answered by a single masked Dijkstra over the
//! persistent structure, allocation-free after warm-up.
//!
//! # Why masking a traversal edge is exactly residual routing
//!
//! Occupying `(e, λ)` removes exactly one edge from the paper's
//! wavelength-expanded multigraph `G_M`, which corresponds one-to-one to
//! the traversal edge `y_u(λ) → x_v(λ)` of `G'`. Conversion gadgets and
//! terminal taps never depend on availability, so the residual `G'` is the
//! persistent `G'` minus masked traversal edges. The masked graph retains
//! aux nodes whose wavelengths vanished from the residual Λ-sets, but such
//! nodes are dead ends (every edge that made them useful is masked) and
//! can never lie on a cheapest path, hence distances and blocked verdicts
//! match a from-scratch rebuild. A full rebuild is still required when the
//! *base* network changes — topology edits, added wavelengths, or altered
//! conversion policies — because those change the node set itself.

use crate::auxiliary::AuxiliaryGraph;
use crate::csr::{CsrBuilder, CsrGraph, EdgeMask, EdgeRole};
use crate::dijkstra::DijkstraWorkspace;
use crate::{Cost, Hop, Semilightpath, Wavelength, WdmNetwork};
use heaps::{BinaryHeap, IndexedPriorityQueue};
use wdm_graph::{LinkId, NodeId};

/// One per-wavelength view of the physical topology: the subgraph of links
/// carrying `λ`, with its own busy mask. Lets single-wavelength (lightpath)
/// policies go rebuild-free too.
#[derive(Debug, Clone)]
struct LambdaGraph {
    graph: CsrGraph,
    mask: EdgeMask,
    /// Dense edge index per link (`u32::MAX` when the link lacks this λ).
    edge_of_link: Vec<u32>,
}

const NO_EDGE: u32 = u32::MAX;

/// The persistent, maskable residual-routing structure for one base
/// network.
///
/// Holds `G_all` ([`AuxiliaryGraph::for_all_pairs`]), one per-wavelength
/// link graph, busy masks for both, and a reusable
/// [`DijkstraWorkspace`]+heap pair, so that after construction a request
/// costs one heap-driven Dijkstra and zero structural work.
///
/// # Examples
///
/// ```
/// use wdm_core::{Cost, PersistentAuxGraph, WdmNetwork, Wavelength};
/// use wdm_graph::{DiGraph, LinkId};
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let mut residual = PersistentAuxGraph::new(&net);
/// let p = residual.route_optimal(0.into(), 1.into()).expect("free");
/// assert_eq!(p.cost(), Cost::new(4));
/// residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
/// assert!(residual.route_optimal(0.into(), 1.into()).is_none());
/// residual.set_busy(LinkId::new(0), Wavelength::new(0), false);
/// assert!(residual.route_optimal(0.into(), 1.into()).is_some());
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PersistentAuxGraph {
    aux: AuxiliaryGraph,
    /// Busy mask over the aux graph's edges (only traversal bits are set).
    mask: EdgeMask,
    /// Per link, sorted by wavelength: the aux traversal edge for
    /// `(link, λ)`.
    aux_edge: Vec<Vec<(Wavelength, u32)>>,
    lambda: Vec<LambdaGraph>,
    ws: DijkstraWorkspace,
    /// Heap reused by every search. The indexed binary heap wins over the
    /// Theorem-1 Fibonacci heap here: per-request graphs are mid-sized, so
    /// the flat sift beats pointer chasing, and it matches the legacy
    /// lightpath routine's heap for the per-wavelength searches.
    heap: BinaryHeap<Cost>,
}

impl PersistentAuxGraph {
    /// Builds the persistent structure for `base` with every resource
    /// free. This is the once-per-engine `O(k²n + km)` cost the per-request
    /// path no longer pays.
    pub fn new(base: &WdmNetwork) -> Self {
        let aux = AuxiliaryGraph::for_all_pairs(base);
        let g = aux.graph();
        let m = base.link_count();
        let n = base.node_count();

        // Index the traversal edges by (link, λ) for O(log k0) flips.
        let mut aux_edge: Vec<Vec<(Wavelength, u32)>> = vec![Vec::new(); m];
        for i in 0..g.edge_count() {
            let (_, e) = g.edge(i);
            if let EdgeRole::Traversal { link, wavelength } = e.role {
                aux_edge[link.index()].push((wavelength, i as u32));
            }
        }
        for per_link in &mut aux_edge {
            per_link.sort_by_key(|&(w, _)| w);
        }

        // One physical-topology subgraph per wavelength, mirroring the
        // legacy per-λ rebuild's edge order (link order).
        let mut lambda = Vec::with_capacity(base.k());
        for li in 0..base.k() {
            let lam = Wavelength::new(li);
            let mut b = CsrBuilder::new(n);
            for (e, l) in base.graph().links() {
                let w = base.link_cost(e, lam);
                if w.is_finite() {
                    b.add_edge(
                        l.tail().index(),
                        l.head().index(),
                        w,
                        EdgeRole::Traversal {
                            link: e,
                            wavelength: lam,
                        },
                    );
                }
            }
            let graph = b.build();
            let mut edge_of_link = vec![NO_EDGE; m];
            for i in 0..graph.edge_count() {
                let (_, e) = graph.edge(i);
                if let EdgeRole::Traversal { link, .. } = e.role {
                    edge_of_link[link.index()] = i as u32;
                }
            }
            let mask = EdgeMask::all_clear(graph.edge_count());
            lambda.push(LambdaGraph {
                graph,
                mask,
                edge_of_link,
            });
        }

        let cap = g.node_count().max(n).max(1);
        PersistentAuxGraph {
            mask: EdgeMask::all_clear(g.edge_count()),
            aux_edge,
            lambda,
            ws: DijkstraWorkspace::with_capacity(cap),
            heap: BinaryHeap::with_capacity(cap),
            aux,
        }
    }

    /// The persistent `G_all` structure.
    pub fn aux(&self) -> &AuxiliaryGraph {
        &self.aux
    }

    /// The base network's global wavelength count `k`.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// Marks `(link, λ)` busy (`true`) or free (`false`) in place.
    ///
    /// Returns `false` — and changes nothing — when the base network does
    /// not carry `λ` on `link` (there is no corresponding traversal edge;
    /// an engine may still *account* such a pair as blocked, e.g. during a
    /// fibre cut, without consulting this structure). Setting a bit to its
    /// current value is a no-op. Either way the operation is `O(log k0)`
    /// and allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_busy(&mut self, link: LinkId, wavelength: Wavelength, busy: bool) -> bool {
        let per_link = &self.aux_edge[link.index()];
        let Ok(pos) = per_link.binary_search_by_key(&wavelength, |&(w, _)| w) else {
            return false;
        };
        let aux_idx = per_link[pos].1 as usize;
        self.mask.set_to(aux_idx, busy);
        let lg = &mut self.lambda[wavelength.index()];
        let e = lg.edge_of_link[link.index()];
        debug_assert_ne!(e, NO_EDGE, "λ-graph edge exists whenever the aux edge does");
        lg.mask.set_to(e as usize, busy);
        true
    }

    /// Whether `(link, λ)` is currently masked busy.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn is_busy(&self, link: LinkId, wavelength: Wavelength) -> bool {
        let per_link = &self.aux_edge[link.index()];
        match per_link.binary_search_by_key(&wavelength, |&(w, _)| w) {
            Ok(pos) => self.mask.is_set(per_link[pos].1 as usize),
            Err(_) => false,
        }
    }

    /// Number of (link, λ) resources currently masked busy.
    pub fn busy_count(&self) -> usize {
        self.mask.set_count()
    }

    /// Frees every resource (e.g. after a full teardown).
    pub fn clear_busy(&mut self) {
        self.mask.clear_all();
        for lg in &mut self.lambda {
            lg.mask.clear_all();
        }
    }

    /// Cheapest semilightpath `s → t` on the residual network — the
    /// Theorem-1 query answered by one masked Dijkstra over the persistent
    /// `G_all`, with no construction and no allocation beyond the returned
    /// path. `s == t` yields the empty path; `None` means blocked.
    ///
    /// Costs (and blocked verdicts) are identical to routing on a freshly
    /// rebuilt residual `G_{s,t}`; see the module docs for the argument.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn route_optimal(&mut self, s: NodeId, t: NodeId) -> Option<Semilightpath> {
        if s == t {
            return Some(Semilightpath::new(Vec::new(), Cost::ZERO));
        }
        let (source, _) = self.aux.all_pairs_terminals(s);
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.ws
            .run_masked_to(self.aux.graph(), source, &mut self.heap, &self.mask, sink);
        self.aux
            .extract_semilightpath_from(self.ws.dist(), self.ws.parent(), sink)
    }

    /// Drains the search-operation totals accumulated by every routing
    /// call (optimal and per-λ alike) since the last drain.
    ///
    /// The underlying [`DijkstraWorkspace`] bumps plain fields during
    /// the search, so this is the zero-hot-path handoff point between
    /// the kernels and a metrics registry: call it per request (or per
    /// flush interval) and feed the deltas into shared counters.
    pub fn take_search_totals(&mut self) -> crate::SearchStats {
        self.ws.take_totals()
    }

    /// Whether `t` is reachable from `s` when **every** resource is
    /// free — i.e. on the unmasked persistent structure. Used to
    /// classify blocked requests: a pair that fails this probe is
    /// blocked by topology (`no_path`), anything else by occupancy.
    ///
    /// `s == t` is trivially reachable. The probe's search work is
    /// accumulated into the totals like any other run; callers that
    /// only meter hot-path searches should drain totals before probing
    /// and discard the probe's delta.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free(&mut self, s: NodeId, t: NodeId) -> bool {
        if s == t {
            return true;
        }
        let (source, _) = self.aux.all_pairs_terminals(s);
        let (_, sink) = self.aux.all_pairs_terminals(t);
        self.ws
            .run_to(self.aux.graph(), source, &mut self.heap, sink);
        self.ws.dist()[sink].is_finite()
    }

    /// Whether some **single** wavelength connects `s` to `t` when every
    /// resource is free — the no-conversion counterpart of
    /// [`reachable_when_free`](Self::reachable_when_free), matching what
    /// first-fit / lightpath-only policies could ever route.
    ///
    /// `s == t` returns `false`, mirroring
    /// [`route_single_wavelength`](Self::route_single_wavelength).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn reachable_when_free_single_wavelength(&mut self, s: NodeId, t: NodeId) -> bool {
        if s == t {
            return false;
        }
        for li in 0..self.lambda.len() {
            let lg = &self.lambda[li];
            self.ws
                .run_to(&lg.graph, s.index(), &mut self.heap, t.index());
            if self.ws.dist()[t.index()].is_finite() {
                return true;
            }
        }
        false
    }

    /// Cheapest single-wavelength path `s → t` on wavelength `lambda` of
    /// the residual network (the lightpath-only building block). Mirrors
    /// the legacy per-λ rebuild exactly, including returning `None` for
    /// `s == t`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or `lambda` is out of range.
    pub fn route_single_wavelength(
        &mut self,
        s: NodeId,
        t: NodeId,
        lambda: Wavelength,
    ) -> Option<Semilightpath> {
        if s == t {
            return None;
        }
        let lg = &self.lambda[lambda.index()];
        self.ws
            .run_masked_to(&lg.graph, s.index(), &mut self.heap, &lg.mask, t.index());
        let total = self.ws.dist()[t.index()];
        if total.is_infinite() {
            return None;
        }
        let mut hops = Vec::new();
        let mut at = t.index();
        while let Some((prev, edge_idx)) = self.ws.parent()[at] {
            let (_, edge) = lg.graph.edge(edge_idx);
            if let EdgeRole::Traversal { link, wavelength } = edge.role {
                hops.push(Hop { link, wavelength });
            }
            at = prev;
        }
        hops.reverse();
        Some(Semilightpath::new(hops, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    /// 0 → 1 → 2 chain, two wavelengths everywhere, cheap conversion.
    fn chain() -> WdmNetwork {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10), (1, 12)])
            .link_wavelengths(1, [(0, 10), (1, 12)])
            .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid")
    }

    /// Routes on a freshly restricted clone — the legacy rebuild path.
    fn legacy_route(
        net: &WdmNetwork,
        busy: &[(usize, usize)],
        s: NodeId,
        t: NodeId,
    ) -> Option<Semilightpath> {
        let residual = net.restrict(|link, w| {
            !busy
                .iter()
                .any(|&(l, lam)| link.index() == l && w.index() == lam)
        });
        LiangShenRouter::new().route(&residual, s, t).ok()?.path
    }

    #[test]
    fn masked_route_matches_legacy_rebuild_costs() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let busy_sets: [&[(usize, usize)]; 4] = [
            &[],
            &[(0, 0)],
            &[(0, 0), (1, 1)],
            &[(0, 0), (0, 1)], // link 0 fully busy → blocked
        ];
        for busy in busy_sets {
            residual.clear_busy();
            for &(l, lam) in busy {
                assert!(residual.set_busy(LinkId::new(l), Wavelength::new(lam), true));
            }
            for (s, t) in [(0, 2), (0, 1), (1, 2), (2, 0)] {
                let masked = residual.route_optimal(NodeId::new(s), NodeId::new(t));
                let legacy = legacy_route(&net, busy, NodeId::new(s), NodeId::new(t));
                match (&masked, &legacy) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.cost(), b.cost(), "{busy:?} {s}->{t}");
                        a.validate(&net.restrict(|link, w| {
                            !busy
                                .iter()
                                .any(|&(l, lam)| link.index() == l && w.index() == lam)
                        }))
                        .expect("valid on residual");
                    }
                    (None, None) => {}
                    other => panic!("blocked-verdict mismatch for {busy:?} {s}->{t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn flips_are_idempotent_and_reversible() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let link = LinkId::new(0);
        let lam = Wavelength::new(0);
        assert!(!residual.is_busy(link, lam));
        assert!(residual.set_busy(link, lam, true));
        assert!(residual.set_busy(link, lam, true), "idempotent set is ok");
        assert!(residual.is_busy(link, lam));
        assert_eq!(residual.busy_count(), 1);
        assert!(residual.set_busy(link, lam, false));
        assert_eq!(residual.busy_count(), 0);
        let before = residual.route_optimal(0.into(), 2.into()).expect("free");
        assert_eq!(before.cost(), Cost::new(20));
    }

    #[test]
    fn absent_wavelength_flip_is_a_reported_no_op() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 3)
            .link_wavelengths(0, [(1, 5)])
            .build()
            .expect("valid");
        let mut residual = PersistentAuxGraph::new(&net);
        // λ0 and λ2 are not carried by link 0: flips report false and
        // leave routing untouched (a fibre-cut engine may mark all k).
        assert!(!residual.set_busy(LinkId::new(0), Wavelength::new(0), true));
        assert!(!residual.set_busy(LinkId::new(0), Wavelength::new(2), true));
        assert_eq!(residual.busy_count(), 0);
        assert!(residual.route_optimal(0.into(), 1.into()).is_some());
    }

    #[test]
    fn single_wavelength_routes_respect_masks() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let p = residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(0))
            .expect("λ0 free");
        assert_eq!(p.cost(), Cost::new(20));
        assert!(p.is_lightpath());
        residual.set_busy(LinkId::new(1), Wavelength::new(0), true);
        assert!(residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(0))
            .is_none());
        let alt = residual
            .route_single_wavelength(0.into(), 2.into(), Wavelength::new(1))
            .expect("λ1 free");
        assert_eq!(alt.cost(), Cost::new(24));
        // s == t mirrors the legacy routine's None.
        assert!(residual
            .route_single_wavelength(1.into(), 1.into(), Wavelength::new(0))
            .is_none());
    }

    #[test]
    fn trivial_and_blocked_queries() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        let empty = residual.route_optimal(1.into(), 1.into()).expect("s == t");
        assert!(empty.is_empty());
        assert_eq!(empty.cost(), Cost::ZERO);
        // 2 has no outgoing links.
        assert!(residual.route_optimal(2.into(), 0.into()).is_none());
    }

    #[test]
    fn search_totals_accumulate_across_requests_and_drain() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        assert_eq!(residual.take_search_totals(), Default::default());
        residual.route_optimal(0.into(), 2.into()).expect("free");
        let one = residual.take_search_totals();
        assert!(one.settled > 0 && one.relaxed > 0 && one.pushes > 0);
        // Two identical requests cost exactly twice one request.
        residual.route_optimal(0.into(), 2.into()).expect("free");
        residual.route_optimal(0.into(), 2.into()).expect("free");
        let mut twice = crate::SearchStats::default();
        twice.accumulate(&one);
        twice.accumulate(&one);
        assert_eq!(residual.take_search_totals(), twice);
        // Masked searches report their skips.
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        residual.route_optimal(0.into(), 2.into()).expect("λ1 free");
        assert!(residual.take_search_totals().masked_skips > 0);
        // s == t short-circuits without touching the kernels.
        residual.route_optimal(1.into(), 1.into()).expect("trivial");
        assert_eq!(residual.take_search_totals(), Default::default());
    }

    #[test]
    fn free_reachability_ignores_masks() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        // Saturate link 0 completely: routing blocks, but the free
        // topology still connects 0 → 2.
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        residual.set_busy(LinkId::new(0), Wavelength::new(1), true);
        assert!(residual.route_optimal(0.into(), 2.into()).is_none());
        assert!(residual.reachable_when_free(0.into(), 2.into()));
        // Node 2 has no outgoing links: blocked by topology.
        assert!(!residual.reachable_when_free(2.into(), 0.into()));
        assert!(residual.reachable_when_free(1.into(), 1.into()));
    }

    #[test]
    fn clone_preserves_mask_state() {
        let net = chain();
        let mut residual = PersistentAuxGraph::new(&net);
        residual.set_busy(LinkId::new(0), Wavelength::new(0), true);
        let mut copy = residual.clone();
        assert!(copy.is_busy(LinkId::new(0), Wavelength::new(0)));
        assert_eq!(
            copy.route_optimal(0.into(), 2.into()).map(|p| p.cost()),
            residual.route_optimal(0.into(), 2.into()).map(|p| p.cost())
        );
    }
}
