//! K cheapest alternative semilightpaths (Yen's algorithm on the layered
//! graph).
//!
//! Alternate-path routing is the standard way provisioning systems cope
//! with contention: compute the best few routes up front, try them in
//! order. Because the layered auxiliary graph `G_{s,t}` maps paths
//! one-to-one onto semilightpaths (Theorem 1), Yen's classic k-shortest
//! *loopless* paths algorithm on `G_{s,t}` yields the k cheapest
//! semilightpaths that do not repeat a *routing state* (node, wavelength,
//! receive/transmit side) — physical nodes may still be revisited on
//! different wavelengths, exactly as the paper's model allows. Alternatives
//! that pass through the same routing state twice are excluded by design
//! (they are never strictly cheaper than the loopless optimum, but may tie
//! or rank among the k cheapest in degenerate cost structures).

use crate::auxiliary::AuxiliaryGraph;
use crate::dijkstra::{dijkstra_filtered, ShortestPathTree};
use crate::{Cost, Semilightpath, WdmError, WdmNetwork};
use std::collections::{BinaryHeap, HashSet};
use wdm_graph::NodeId;

/// A path through the auxiliary graph, tracked by Yen's algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AuxPath {
    /// Aux node sequence, `s' … t''`.
    nodes: Vec<usize>,
    /// Dense edge indices, one per step.
    edges: Vec<usize>,
    cost: Cost,
}

impl AuxPath {
    fn from_tree(tree: &ShortestPathTree, sink: usize) -> Option<AuxPath> {
        let cost = tree.dist[sink];
        if cost.is_infinite() {
            return None;
        }
        let mut nodes = vec![sink];
        let mut edges = Vec::new();
        let mut at = sink;
        while let Some((prev, edge)) = tree.parent[at] {
            nodes.push(prev);
            edges.push(edge);
            at = prev;
        }
        nodes.reverse();
        edges.reverse();
        Some(AuxPath { nodes, edges, cost })
    }

    fn to_semilightpath(&self, aux: &AuxiliaryGraph) -> Semilightpath {
        use crate::csr::EdgeRole;
        let mut hops = Vec::new();
        for &e in &self.edges {
            let (_, edge) = aux.graph().edge(e);
            if let EdgeRole::Traversal { link, wavelength } = edge.role {
                hops.push(crate::Hop { link, wavelength });
            }
        }
        Semilightpath::new(hops, self.cost)
    }
}

/// Candidate ordering for the Yen frontier (min-heap by cost, then by the
/// edge sequence for determinism).
///
/// The tie-break must use the *edge* sequence: parallel fibres produce
/// distinct paths with identical node sequences, and an `Ord` that cannot
/// tell them apart would disagree with the derived `PartialEq`.
#[derive(Debug, PartialEq, Eq)]
struct Candidate(AuxPath);

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on cost; tie-break on the sequences.
        other
            .0
            .cost
            .cmp(&self.0.cost)
            .then_with(|| other.0.edges.cmp(&self.0.edges))
            .then_with(|| other.0.nodes.cmp(&self.0.nodes))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes up to `count` cheapest distinct semilightpaths from `s` to
/// `t`, in non-decreasing cost order.
///
/// Fewer than `count` paths are returned when the layered graph admits
/// fewer loopless alternatives. `s == t` yields just the empty path.
///
/// # Errors
///
/// [`WdmError::NodeOutOfRange`] for invalid endpoints.
///
/// # Examples
///
/// ```
/// use wdm_core::{k_shortest_semilightpaths, ConversionPolicy, Cost, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// // Two parallel routes 0 → 2: via node 1 (cost 10) or direct (cost 15).
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2), (0, 2)]);
/// let net = WdmNetwork::builder(g, 1)
///     .link_wavelengths(0, [(0, 4)])
///     .link_wavelengths(1, [(0, 6)])
///     .link_wavelengths(2, [(0, 15)])
///     .build()?;
/// let paths = k_shortest_semilightpaths(&net, 0.into(), 2.into(), 3)?;
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].cost(), Cost::new(10));
/// assert_eq!(paths[1].cost(), Cost::new(15));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn k_shortest_semilightpaths(
    network: &WdmNetwork,
    s: NodeId,
    t: NodeId,
    count: usize,
) -> Result<Vec<Semilightpath>, WdmError> {
    let n = network.node_count();
    for v in [s, t] {
        if v.index() >= n {
            return Err(WdmError::NodeOutOfRange { node: v, n });
        }
    }
    if count == 0 {
        return Ok(Vec::new());
    }
    if s == t {
        return Ok(vec![Semilightpath::new(Vec::new(), Cost::ZERO)]);
    }

    let aux = AuxiliaryGraph::for_pair(network, s, t);
    let graph = aux.graph();
    let (source, sink) = aux.pair_terminals();
    let no_bans_nodes = vec![false; graph.node_count()];
    let no_bans_edges = HashSet::new();

    let first_tree = dijkstra_filtered(graph, source, &no_bans_nodes, &no_bans_edges);
    let Some(first) = AuxPath::from_tree(&first_tree, sink) else {
        return Ok(Vec::new());
    };

    let mut accepted: Vec<AuxPath> = vec![first];
    let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
    // Dedup on the *edge* sequence: parallel fibres yield distinct paths
    // whose node sequences coincide.
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    seen.insert(accepted[0].edges.clone());

    while accepted.len() < count {
        let Some(last) = accepted.last().cloned() else {
            unreachable!("accepted starts with the first path and only grows")
        };
        // Spur from every node of the last accepted path except the sink.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_edges = &last.edges[..spur_idx];

            // Ban the next edge of every accepted path sharing this root.
            let mut banned_edges = HashSet::new();
            for p in &accepted {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(&e) = p.edges.get(spur_idx) {
                        banned_edges.insert(e);
                    }
                }
            }
            // Ban the root's interior nodes so spur paths are loopless.
            let mut banned_nodes = vec![false; graph.node_count()];
            for &v in &root_nodes[..spur_idx] {
                banned_nodes[v] = true;
            }

            let tree = dijkstra_filtered(graph, spur_node, &banned_nodes, &banned_edges);
            if let Some(spur) = AuxPath::from_tree(&tree, sink) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let root_cost: Cost = root_edges.iter().map(|&e| graph.edge(e).1.cost).sum();
                let candidate = AuxPath {
                    nodes,
                    edges,
                    cost: root_cost + spur.cost,
                };
                if seen.insert(candidate.edges.clone()) {
                    frontier.push(Candidate(candidate));
                }
            }
        }
        match frontier.pop() {
            Some(Candidate(next)) => accepted.push(next),
            None => break,
        }
    }

    Ok(accepted.iter().map(|p| p.to_semilightpath(&aux)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConversionPolicy, LiangShenRouter};
    use wdm_graph::DiGraph;

    fn diamond() -> WdmNetwork {
        // Three routes 0 → 3 with distinct costs: 0-1-3 (12), 0-2-3 (14),
        // 0-3 direct (20).
        let g = DiGraph::from_links(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]);
        WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 5)])
            .link_wavelengths(1, [(0, 7)])
            .link_wavelengths(2, [(0, 6)])
            .link_wavelengths(3, [(0, 8)])
            .link_wavelengths(4, [(0, 20)])
            .build()
            .expect("valid")
    }

    #[test]
    fn returns_paths_in_cost_order() {
        let net = diamond();
        let paths = k_shortest_semilightpaths(&net, 0.into(), 3.into(), 5).expect("ok");
        let costs: Vec<Cost> = paths.iter().map(|p| p.cost()).collect();
        assert_eq!(costs, vec![Cost::new(12), Cost::new(14), Cost::new(20)]);
        for p in &paths {
            p.validate(&net).expect("valid");
        }
    }

    #[test]
    fn first_path_is_the_optimum() {
        let net = diamond();
        let paths = k_shortest_semilightpaths(&net, 0.into(), 3.into(), 1).expect("ok");
        let opt = LiangShenRouter::new()
            .route(&net, 0.into(), 3.into())
            .expect("ok")
            .cost();
        assert_eq!(paths[0].cost(), opt);
    }

    #[test]
    fn wavelength_alternatives_count_as_distinct_paths() {
        // One physical route but two wavelengths → two semilightpaths.
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 5), (1, 9)])
            .build()
            .expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 1.into(), 4).expect("ok");
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost(), Cost::new(5));
        assert_eq!(paths[1].cost(), Cost::new(9));
        assert_ne!(paths[0].hops()[0].wavelength, paths[1].hops()[0].wavelength);
    }

    #[test]
    fn conversion_alternatives_are_enumerated() {
        // 0 →(λ0)→ 1 →(λ0 or λ1)→ 2: staying on λ0 (cost 12) beats
        // converting (cost 10+1+5 = 16)? No — make conversion cheaper.
        let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
        let net = WdmNetwork::builder(g, 2)
            .link_wavelengths(0, [(0, 10)])
            .link_wavelengths(1, [(0, 2), (1, 5)])
            .conversion(1, ConversionPolicy::Uniform(Cost::new(1)))
            .build()
            .expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 2.into(), 4).expect("ok");
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost(), Cost::new(12)); // stay on λ0
        assert_eq!(paths[1].cost(), Cost::new(16)); // convert to λ1
        assert_eq!(paths[1].conversion_count(), 1);
    }

    #[test]
    fn exhausts_alternatives_gracefully() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 3)])
            .build()
            .expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 1.into(), 10).expect("ok");
        assert_eq!(paths.len(), 1);
        // Unreachable pair → empty list.
        let none = k_shortest_semilightpaths(&net, 1.into(), 0.into(), 3).expect("ok");
        assert!(none.is_empty());
        // count == 0 → empty list.
        assert!(k_shortest_semilightpaths(&net, 0.into(), 1.into(), 0)
            .expect("ok")
            .is_empty());
        // s == t → the empty path only.
        let trivial = k_shortest_semilightpaths(&net, 0.into(), 0.into(), 3).expect("ok");
        assert_eq!(trivial.len(), 1);
        assert!(trivial[0].is_empty());
    }

    #[test]
    fn brute_force_agreement_on_small_instance() {
        // Enumerate all simple aux paths by DFS and compare the cheapest 4.
        let net = diamond();
        let mut all: Vec<Cost> = Vec::new();
        // Physical enumeration: all simple 0→3 routes (single λ, so path
        // cost = sum of link costs).
        // 0-1-3 = 12, 0-2-3 = 14, 0-3 = 20.
        all.extend([Cost::new(12), Cost::new(14), Cost::new(20)]);
        all.sort();
        let paths = k_shortest_semilightpaths(&net, 0.into(), 3.into(), 4).expect("ok");
        let got: Vec<Cost> = paths.iter().map(|p| p.cost()).collect();
        assert_eq!(got, all);
    }

    #[test]
    fn parallel_fibres_yield_distinct_alternatives() {
        // Two parallel 0→1 fibres on the same wavelength: the aux node
        // sequence s' → y_0(λ0) → x_1(λ0) → t'' is identical for both, so
        // node-sequence dedup would collapse them. The edge sequences
        // differ, and both alternatives must be enumerated.
        let g = DiGraph::from_links(2, [(0, 1), (0, 1)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 5)])
            .link_wavelengths(1, [(0, 7)])
            .build()
            .expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 1.into(), 4).expect("ok");
        assert_eq!(paths.len(), 2, "both parallel fibres enumerated");
        assert_eq!(paths[0].cost(), Cost::new(5));
        assert_eq!(paths[1].cost(), Cost::new(7));
        assert_ne!(
            paths[0].hops()[0].link,
            paths[1].hops()[0].link,
            "alternatives use distinct physical fibres"
        );
        for p in &paths {
            p.validate(&net).expect("valid");
        }
    }

    #[test]
    fn equal_cost_parallel_fibres_are_both_kept() {
        // Same topology with *equal* costs: the frontier tie-break must
        // still distinguish the candidates (Ord consistent with PartialEq).
        let g = DiGraph::from_links(2, [(0, 1), (0, 1)]);
        let net = WdmNetwork::builder(g, 1)
            .link_wavelengths(0, [(0, 5)])
            .link_wavelengths(1, [(0, 5)])
            .build()
            .expect("valid");
        let paths = k_shortest_semilightpaths(&net, 0.into(), 1.into(), 4).expect("ok");
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost(), Cost::new(5));
        assert_eq!(paths[1].cost(), Cost::new(5));
        assert_ne!(paths[0].hops()[0].link, paths[1].hops()[0].link);
    }

    #[test]
    fn node_out_of_range_is_rejected() {
        let net = diamond();
        assert!(matches!(
            k_shortest_semilightpaths(&net, 0.into(), 99.into(), 2),
            Err(WdmError::NodeOutOfRange { .. })
        ));
    }
}
