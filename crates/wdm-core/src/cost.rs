//! Exact, saturating path costs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A non-negative routing cost with an infinite sentinel.
///
/// The paper's cost structure uses non-negative weights `w(e, λ)` and
/// conversion costs `c_v(λp, λq)`, with `∞` marking unavailable wavelengths
/// or forbidden conversions. `Cost` represents this exactly over `u64`
/// (treat one unit as a milli-cost if fractional weights are needed);
/// addition saturates at [`Cost::INFINITY`], so `∞ + x = ∞` as the model
/// requires and property tests can compare costs exactly.
///
/// # Examples
///
/// ```
/// use wdm_core::Cost;
///
/// let a = Cost::new(3);
/// let b = Cost::new(4);
/// assert_eq!(a + b, Cost::new(7));
/// assert_eq!((a + Cost::INFINITY), Cost::INFINITY);
/// assert!(a < b && b < Cost::INFINITY);
/// assert!(Cost::INFINITY.is_infinite());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// The infinite sentinel (unavailable wavelength / forbidden
    /// conversion / unreachable destination).
    pub const INFINITY: Cost = Cost(u64::MAX);

    /// Creates a finite cost.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for [`Cost::INFINITY`]).
    pub fn new(value: u64) -> Self {
        assert!(value != u64::MAX, "u64::MAX is reserved for Cost::INFINITY");
        Cost(value)
    }

    /// Returns `true` for every cost except [`Cost::INFINITY`].
    pub fn is_finite(self) -> bool {
        self.0 != u64::MAX
    }

    /// Returns `true` only for [`Cost::INFINITY`].
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// The underlying value of a finite cost.
    ///
    /// Returns `None` for [`Cost::INFINITY`].
    pub fn value(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Saturating multiplication by a scalar (stays infinite).
    pub fn saturating_mul(self, factor: u64) -> Cost {
        if self.is_infinite() {
            return Cost::INFINITY;
        }
        match self.0.checked_mul(factor) {
            Some(v) if v != u64::MAX => Cost(v),
            _ => Cost::INFINITY,
        }
    }
}

impl From<u64> for Cost {
    fn from(value: u64) -> Self {
        Cost::new(value)
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        if self.is_infinite() || rhs.is_infinite() {
            Cost::INFINITY
        } else {
            match self.0.checked_add(rhs.0) {
                Some(v) if v != u64::MAX => Cost(v),
                _ => Cost::INFINITY,
            }
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            f.write_str("∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Cost::new(1) + Cost::new(2), Cost::new(3));
        assert_eq!(Cost::INFINITY + Cost::new(2), Cost::INFINITY);
        assert_eq!(Cost::new(2) + Cost::INFINITY, Cost::INFINITY);
        assert_eq!(Cost::new(u64::MAX - 1) + Cost::new(5), Cost::INFINITY);
    }

    #[test]
    fn ordering_places_infinity_last() {
        let mut v = vec![Cost::INFINITY, Cost::new(3), Cost::ZERO, Cost::new(10)];
        v.sort();
        assert_eq!(
            v,
            vec![Cost::ZERO, Cost::new(3), Cost::new(10), Cost::INFINITY]
        );
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = [1u64, 2, 3].into_iter().map(Cost::new).sum();
        assert_eq!(total, Cost::new(6));
        let with_inf: Cost = [Cost::new(1), Cost::INFINITY].into_iter().sum();
        assert_eq!(with_inf, Cost::INFINITY);
    }

    #[test]
    fn display() {
        assert_eq!(Cost::new(42).to_string(), "42");
        assert_eq!(Cost::INFINITY.to_string(), "∞");
    }

    #[test]
    fn value_accessor() {
        assert_eq!(Cost::new(7).value(), Some(7));
        assert_eq!(Cost::INFINITY.value(), None);
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(Cost::new(6).saturating_mul(7), Cost::new(42));
        assert_eq!(Cost::INFINITY.saturating_mul(0), Cost::INFINITY);
        assert_eq!(Cost::new(u64::MAX / 2).saturating_mul(3), Cost::INFINITY);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_sentinel() {
        Cost::new(u64::MAX);
    }
}
