//! Dijkstra's algorithm over the CSR search graphs, generic in the heap.
//!
//! Theorem 1's running time rests on Dijkstra with a Fibonacci heap
//! (`O(m' + n'·log n')` on a graph with `n'` nodes and `m'` edges); the CFZ
//! baseline of Section III-C is charged with an array-scan Dijkstra
//! (`O(n'² + m')`). Both are the same relaxation loop over a different
//! [`IndexedPriorityQueue`], so this module implements it once, generically,
//! and dispatches on [`HeapKind`] for run-time selection.

use crate::csr::{CsrGraph, EdgeMask};
use crate::Cost;
use heaps::{
    ArrayHeap, BinaryHeap, FibonacciHeap, HeapKind, IndexedPriorityQueue, LeftistHeap, PairingHeap,
    SkewHeap,
};

/// Operation counters from one search-kernel run, for the experiment
/// tables and the observability layer.
///
/// The heap-operation counts are derived inside the relaxation loop
/// rather than by instrumenting the [`IndexedPriorityQueue`] trait:
/// an improvement on a node whose tentative distance was still infinite
/// is a `push`, an improvement on a finite one is an effective
/// `decrease_key`, and `pop_min`s equal [`settled`](Self::settled).
/// Counting here keeps every heap implementation untouched and costs
/// one branch that the optimizer folds into the existing infinity
/// check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Nodes settled (`pop_min` count).
    pub settled: usize,
    /// Edges relaxed (out-edges scanned from settled nodes).
    pub relaxed: usize,
    /// Successful queue improvements (`push` or effective `decrease_key`).
    pub improved: usize,
    /// Edges skipped because their dense index was set in the mask.
    pub masked_skips: usize,
    /// Queue insertions (first-time improvements plus the source push).
    pub pushes: usize,
    /// Effective key decreases (improvements on already-queued nodes).
    pub decrease_keys: usize,
}

impl SearchStats {
    /// Adds `other`'s counters into `self` (used for per-workspace
    /// running totals).
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.settled += other.settled;
        self.relaxed += other.relaxed;
        self.improved += other.improved;
        self.masked_skips += other.masked_skips;
        self.pushes += other.pushes;
        self.decrease_keys += other.decrease_keys;
    }
}

/// Former name of [`SearchStats`], kept for the experiment tables and
/// downstream callers.
pub type DijkstraStats = SearchStats;

/// A shortest-path tree: per-node distance and parent pointers.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// `dist[v]` — cost of the shortest path from the source
    /// ([`Cost::INFINITY`] when unreachable).
    pub dist: Vec<Cost>,
    /// `parent[v] = (u, edge_index)` — the tree edge entering `v`.
    pub parent: Vec<Option<(usize, usize)>>,
    /// The source node the tree is rooted at.
    pub source: usize,
    /// Operation counters.
    pub stats: DijkstraStats,
}

impl ShortestPathTree {
    /// The aux-node path from the root to `target` (inclusive), or `None`
    /// when unreachable.
    pub fn path_to(&self, target: usize) -> Option<Vec<usize>> {
        if self.dist[target].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut at = target;
        while let Some((prev, _)) = self.parent[at] {
            path.push(prev);
            at = prev;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

/// Reusable arenas for repeated Dijkstra runs over one graph.
///
/// Running `n` searches over the shared all-pairs auxiliary graph
/// (Corollary 1) allocates three `O(kn)` vectors per search when done
/// naively. A workspace keeps those arenas — distance, parent, and
/// settled flags — alive across runs so each subsequent search only
/// pays an `O(kn)` refill (a memset-speed fill, no allocator traffic).
/// Combined with a reused heap (see [`IndexedPriorityQueue::clear`]),
/// one source tree runs allocation-free after the first.
///
/// The computed tree is read in place via [`dist`](Self::dist) /
/// [`parent`](Self::parent), or materialized with
/// [`to_tree`](Self::to_tree) / [`into_tree`](Self::into_tree).
///
/// # Examples
///
/// ```
/// use heaps::{FibonacciHeap, IndexedPriorityQueue};
/// use wdm_core::{dijkstra::DijkstraWorkspace, AuxiliaryGraph, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let aux = AuxiliaryGraph::for_pair(&net, 0.into(), 1.into());
/// let mut ws = DijkstraWorkspace::new();
/// let mut queue = FibonacciHeap::with_capacity(aux.graph().node_count());
/// ws.run(aux.graph(), aux.super_source().unwrap(), &mut queue);
/// assert_eq!(ws.dist()[aux.super_sink().unwrap()], wdm_core::Cost::new(4));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<Cost>,
    parent: Vec<Option<(usize, usize)>>,
    settled: Vec<bool>,
    stats: SearchStats,
    totals: SearchStats,
    source: usize,
}

impl DijkstraWorkspace {
    /// An empty workspace; arenas grow on first [`run`](Self::run).
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace with arenas pre-sized for an `n`-node graph.
    pub fn with_capacity(n: usize) -> Self {
        DijkstraWorkspace {
            dist: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            settled: Vec::with_capacity(n),
            stats: SearchStats::default(),
            totals: SearchStats::default(),
            source: 0,
        }
    }

    /// Resets the arenas for a graph of `n` nodes.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, Cost::INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        self.stats = SearchStats::default();
    }

    /// Runs Dijkstra from `source`, reusing this workspace's arenas and
    /// the caller's `queue` (cleared here before use).
    ///
    /// The result is identical to [`dijkstra`] with the same heap type:
    /// arena reuse changes where the vectors live, never the sequence of
    /// queue operations, so distances, parents, and stats are
    /// bit-for-bit the same.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `queue` was created with a
    /// capacity below the graph's node count (the indexed heaps address
    /// items `0..capacity` and do not grow).
    pub fn run<Q: IndexedPriorityQueue<Cost>>(
        &mut self,
        graph: &CsrGraph,
        source: usize,
        queue: &mut Q,
    ) {
        self.run_inner(graph, source, queue, None, None);
    }

    /// Runs Dijkstra from `source`, skipping edges whose dense index is
    /// set in `mask`.
    ///
    /// Equivalent to deleting the masked edges and running
    /// [`run`](Self::run): the relaxation visits the surviving edges in
    /// the same order either way, so distances and parents match a
    /// physically rebuilt subgraph with identical edge layout.
    ///
    /// # Panics
    ///
    /// Panics as [`run`](Self::run) does, and additionally if
    /// `mask.len()` differs from the graph's edge count.
    pub fn run_masked<Q: IndexedPriorityQueue<Cost>>(
        &mut self,
        graph: &CsrGraph,
        source: usize,
        queue: &mut Q,
        mask: &EdgeMask,
    ) {
        self.run_inner(graph, source, queue, Some(mask), None);
    }

    /// Like [`run_masked`](Self::run_masked) but stops as soon as
    /// `target` is settled.
    ///
    /// `dist[target]`, and every parent pointer on the tree path from
    /// `source` to `target`, are final and identical to a full run —
    /// Dijkstra settles nodes in nondecreasing distance order, so the
    /// chain of parents behind a settled node never changes afterwards.
    /// Distances of nodes not yet settled at cut-off are unspecified;
    /// read only the target's path after a truncated run.
    // wdm-lint: hot-path
    pub fn run_masked_to<Q: IndexedPriorityQueue<Cost>>(
        &mut self,
        graph: &CsrGraph,
        source: usize,
        queue: &mut Q,
        mask: &EdgeMask,
        target: usize,
    ) {
        self.run_inner(graph, source, queue, Some(mask), Some(target));
    }

    /// Like [`run`](Self::run) but stops as soon as `target` is settled
    /// — the unmasked counterpart of
    /// [`run_masked_to`](Self::run_masked_to), used for reachability
    /// probes on the free topology (blocked-cause classification).
    pub fn run_to<Q: IndexedPriorityQueue<Cost>>(
        &mut self,
        graph: &CsrGraph,
        source: usize,
        queue: &mut Q,
        target: usize,
    ) {
        self.run_inner(graph, source, queue, None, Some(target));
    }

    // wdm-lint: hot-path
    fn run_inner<Q: IndexedPriorityQueue<Cost>>(
        &mut self,
        graph: &CsrGraph,
        source: usize,
        queue: &mut Q,
        mask: Option<&EdgeMask>,
        until: Option<usize>,
    ) {
        let n = graph.node_count();
        assert!(source < n, "source {source} out of range");
        assert!(
            queue.capacity() >= n,
            "queue capacity {} below node count {n}",
            queue.capacity()
        );
        if let Some(mask) = mask {
            assert_eq!(mask.len(), graph.edge_count(), "one mask bit per edge");
        }
        self.reset(n);
        self.source = source;
        queue.clear();

        self.dist[source] = Cost::ZERO;
        queue.push(source, Cost::ZERO);
        self.stats.pushes += 1;

        while let Some((u, du)) = queue.pop_min() {
            debug_assert_eq!(du, self.dist[u]);
            self.settled[u] = true;
            self.stats.settled += 1;
            if until == Some(u) {
                break;
            }
            for edge in graph.out_edges(u) {
                if mask.is_some_and(|m| m.is_set(edge.index)) {
                    self.stats.masked_skips += 1;
                    continue;
                }
                self.stats.relaxed += 1;
                let v = edge.target;
                if self.settled[v] {
                    continue;
                }
                let candidate = du + edge.cost;
                if candidate < self.dist[v] {
                    // Finite old distance means v is already queued, so
                    // the improvement is an effective decrease-key; an
                    // infinite one means this is v's first insertion.
                    if self.dist[v].is_infinite() {
                        self.stats.pushes += 1;
                    } else {
                        self.stats.decrease_keys += 1;
                    }
                    self.dist[v] = candidate;
                    self.parent[v] = Some((u, edge.index));
                    queue.push_or_decrease(v, candidate);
                    self.stats.improved += 1;
                }
            }
        }
        self.totals.accumulate(&self.stats);
    }

    /// Distances from the last run's source.
    pub fn dist(&self) -> &[Cost] {
        &self.dist
    }

    /// Parent pointers from the last run.
    pub fn parent(&self) -> &[Option<(usize, usize)>] {
        &self.parent
    }

    /// Operation counters from the last run.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Running totals accumulated over every run since the last
    /// [`take_totals`](Self::take_totals).
    ///
    /// The totals are plain workspace fields bumped alongside the
    /// per-run counters — no atomics on the search path. A metrics
    /// flush drains them with `take_totals` and feeds the deltas into
    /// shared `wdm-obs` counters at whatever cadence it likes.
    pub fn totals(&self) -> SearchStats {
        self.totals
    }

    /// Returns the running totals and resets them to zero.
    pub fn take_totals(&mut self) -> SearchStats {
        std::mem::take(&mut self.totals)
    }

    /// The source of the last run.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Clones the last run's result into an owned tree (the workspace
    /// stays usable).
    pub fn to_tree(&self) -> ShortestPathTree {
        ShortestPathTree {
            dist: self.dist.clone(),
            parent: self.parent.clone(),
            source: self.source,
            stats: self.stats,
        }
    }

    /// Moves the last run's result into an owned tree without copying.
    pub fn into_tree(self) -> ShortestPathTree {
        ShortestPathTree {
            dist: self.dist,
            parent: self.parent,
            source: self.source,
            stats: self.stats,
        }
    }
}

/// Runs Dijkstra from `source` using heap `Q`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use heaps::FibonacciHeap;
/// use wdm_core::{AuxiliaryGraph, dijkstra, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let aux = AuxiliaryGraph::for_pair(&net, 0.into(), 1.into());
/// let tree = dijkstra::<FibonacciHeap<_>>(aux.graph(), aux.super_source().unwrap());
/// assert_eq!(tree.dist[aux.super_sink().unwrap()], wdm_core::Cost::new(4));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn dijkstra<Q: IndexedPriorityQueue<Cost>>(
    graph: &CsrGraph,
    source: usize,
) -> ShortestPathTree {
    let mut ws = DijkstraWorkspace::with_capacity(graph.node_count());
    let mut queue = Q::with_capacity(graph.node_count());
    ws.run(graph, source, &mut queue);
    ws.into_tree()
}

/// Runs Dijkstra from `source` on the subgraph that excludes every edge
/// whose dense index is set in `mask`.
///
/// One-shot convenience over [`DijkstraWorkspace::run_masked`]; repeated
/// searches should hold a workspace and heap instead so the arenas are
/// reused.
///
/// # Panics
///
/// Panics if `source` is out of range or `mask.len()` differs from the
/// graph's edge count.
pub fn dijkstra_masked<Q: IndexedPriorityQueue<Cost>>(
    graph: &CsrGraph,
    source: usize,
    mask: &EdgeMask,
) -> ShortestPathTree {
    let mut ws = DijkstraWorkspace::with_capacity(graph.node_count());
    let mut queue = Q::with_capacity(graph.node_count());
    ws.run_masked(graph, source, &mut queue, mask);
    ws.into_tree()
}

/// Runs Dijkstra with a run-time-selected heap.
pub fn dijkstra_with(kind: HeapKind, graph: &CsrGraph, source: usize) -> ShortestPathTree {
    match kind {
        HeapKind::Fibonacci => dijkstra::<FibonacciHeap<Cost>>(graph, source),
        HeapKind::Pairing => dijkstra::<PairingHeap<Cost>>(graph, source),
        HeapKind::Binary => dijkstra::<BinaryHeap<Cost>>(graph, source),
        HeapKind::Array => dijkstra::<ArrayHeap<Cost>>(graph, source),
        HeapKind::Skew => dijkstra::<SkewHeap<Cost>>(graph, source),
        HeapKind::Leftist => dijkstra::<LeftistHeap<Cost>>(graph, source),
    }
}

/// Dijkstra restricted to a subgraph: nodes with `banned_nodes[v] = true`
/// are never entered or left, and edges whose dense index is in
/// `banned_edges` are skipped. Used by Yen's k-shortest-paths spur
/// searches.
///
/// # Panics
///
/// Panics if `source` is out of range or `banned_nodes.len()` differs from
/// the node count. A banned source yields an all-infinite tree.
pub fn dijkstra_filtered(
    graph: &CsrGraph,
    source: usize,
    banned_nodes: &[bool],
    banned_edges: &std::collections::HashSet<usize>,
) -> ShortestPathTree {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range");
    assert_eq!(banned_nodes.len(), n, "one ban flag per node");
    let mut dist = vec![Cost::INFINITY; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut stats = DijkstraStats::default();
    let mut queue: BinaryHeap<Cost> = BinaryHeap::with_capacity(n);

    if !banned_nodes[source] {
        dist[source] = Cost::ZERO;
        queue.push(source, Cost::ZERO);
        stats.pushes += 1;
    }
    while let Some((u, du)) = queue.pop_min() {
        settled[u] = true;
        stats.settled += 1;
        for edge in graph.out_edges(u) {
            stats.relaxed += 1;
            let v = edge.target;
            if settled[v] || banned_nodes[v] || banned_edges.contains(&edge.index) {
                continue;
            }
            let candidate = du + edge.cost;
            if candidate < dist[v] {
                if dist[v].is_infinite() {
                    stats.pushes += 1;
                } else {
                    stats.decrease_keys += 1;
                }
                dist[v] = candidate;
                parent[v] = Some((u, edge.index));
                queue.push_or_decrease(v, candidate);
                stats.improved += 1;
            }
        }
    }
    ShortestPathTree {
        dist,
        parent,
        source,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CsrBuilder, EdgeRole};

    /// Small weighted digraph with a known shortest-path structure.
    fn diamond() -> CsrGraph {
        //      1
        //   /     \
        //  0       3 — 4
        //   \     /
        //      2
        let mut b = CsrBuilder::new(5);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::new(1), t);
        b.add_edge(0, 2, Cost::new(4), t);
        b.add_edge(1, 3, Cost::new(10), t);
        b.add_edge(2, 3, Cost::new(2), t);
        b.add_edge(3, 4, Cost::new(3), t);
        b.add_edge(1, 2, Cost::new(1), t);
        b.build()
    }

    fn check_diamond(tree: &ShortestPathTree) {
        assert_eq!(tree.dist[0], Cost::ZERO);
        assert_eq!(tree.dist[1], Cost::new(1));
        assert_eq!(tree.dist[2], Cost::new(2)); // 0→1→2
        assert_eq!(tree.dist[3], Cost::new(4)); // 0→1→2→3
        assert_eq!(tree.dist[4], Cost::new(7));
        assert_eq!(tree.path_to(4), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn all_heaps_agree_on_diamond() {
        let g = diamond();
        for kind in HeapKind::ALL {
            let tree = dijkstra_with(kind, &g, 0);
            check_diamond(&tree);
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1, Cost::new(1), EdgeRole::Tap);
        let g = b.build();
        let tree = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist[2], Cost::INFINITY);
        assert_eq!(tree.path_to(2), None);
        assert_eq!(tree.parent[2], None);
    }

    #[test]
    fn zero_cost_cycles_terminate() {
        let mut b = CsrBuilder::new(3);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::ZERO, t);
        b.add_edge(1, 2, Cost::ZERO, t);
        b.add_edge(2, 0, Cost::ZERO, t);
        let g = b.build();
        let tree = dijkstra::<BinaryHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist, vec![Cost::ZERO; 3]);
        assert_eq!(tree.stats.settled, 3);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut b = CsrBuilder::new(2);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::new(9), t);
        b.add_edge(0, 1, Cost::new(2), t);
        b.add_edge(0, 1, Cost::new(5), t);
        let g = b.build();
        let tree = dijkstra::<PairingHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist[1], Cost::new(2));
        let (_, e) = g.edge(tree.parent[1].expect("has parent").1);
        assert_eq!(e.cost, Cost::new(2));
    }

    #[test]
    fn stats_count_work() {
        let g = diamond();
        let tree = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        assert_eq!(tree.stats.settled, 5);
        assert_eq!(tree.stats.relaxed, 6);
        assert!(tree.stats.improved >= 5);
    }

    #[test]
    fn single_node_graph() {
        let g = CsrBuilder::new(1).build();
        let tree = dijkstra::<ArrayHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist, vec![Cost::ZERO]);
        assert_eq!(tree.path_to(0), Some(vec![0]));
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new();
        let mut queue: FibonacciHeap<Cost> = FibonacciHeap::with_capacity(g.node_count());
        // Several consecutive runs through the same arenas and heap must
        // reproduce the one-shot entry point exactly.
        for source in [0, 3, 0, 2, 4, 0] {
            ws.run(&g, source, &mut queue);
            let fresh = dijkstra::<FibonacciHeap<Cost>>(&g, source);
            assert_eq!(ws.dist(), &fresh.dist[..], "dist from {source}");
            assert_eq!(ws.parent(), &fresh.parent[..], "parent from {source}");
            assert_eq!(ws.stats(), fresh.stats, "stats from {source}");
            assert_eq!(ws.source(), source);
            let tree = ws.to_tree();
            assert_eq!(tree.dist, fresh.dist);
            assert_eq!(tree.path_to(4), fresh.path_to(4));
        }
    }

    #[test]
    fn masked_run_matches_rebuilt_subgraph() {
        let g = diamond();
        // Mask the 0→1 edge (index 0): shortest route to 4 becomes 0→2→3→4.
        let mut mask = EdgeMask::all_clear(g.edge_count());
        mask.set(0);
        let masked = dijkstra_masked::<FibonacciHeap<Cost>>(&g, 0, &mask);
        // Rebuild the same subgraph physically and compare dist values.
        let mut b = CsrBuilder::new(5);
        for i in 1..g.edge_count() {
            let (s, e) = g.edge(i);
            b.add_edge(s, e.target, e.cost, e.role);
        }
        let rebuilt = dijkstra::<FibonacciHeap<Cost>>(&b.build(), 0);
        assert_eq!(masked.dist, rebuilt.dist);
        assert_eq!(masked.dist[4], Cost::new(9));
        assert_eq!(masked.path_to(4), Some(vec![0, 2, 3, 4]));
        // An all-clear mask reproduces the unmasked run exactly.
        let clear = EdgeMask::all_clear(g.edge_count());
        let unmasked = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        let via_clear = dijkstra_masked::<FibonacciHeap<Cost>>(&g, 0, &clear);
        assert_eq!(via_clear.dist, unmasked.dist);
        assert_eq!(via_clear.parent, unmasked.parent);
        assert_eq!(via_clear.stats, unmasked.stats);
    }

    #[test]
    fn truncated_run_finalizes_target_path() {
        let g = diamond();
        let mask = EdgeMask::all_clear(g.edge_count());
        let full = dijkstra_masked::<FibonacciHeap<Cost>>(&g, 0, &mask);
        let mut ws = DijkstraWorkspace::new();
        let mut queue: FibonacciHeap<Cost> = FibonacciHeap::with_capacity(g.node_count());
        for target in 0..g.node_count() {
            ws.run_masked_to(&g, 0, &mut queue, &mask, target);
            assert_eq!(ws.dist()[target], full.dist[target], "dist to {target}");
            // Walk the parent chain: it must reproduce the full run's path.
            let mut path = vec![target];
            let mut at = target;
            while let Some((prev, _)) = ws.parent()[at] {
                path.push(prev);
                at = prev;
            }
            path.reverse();
            assert_eq!(Some(path), full.path_to(target), "path to {target}");
            assert!(ws.stats().settled <= full.stats.settled);
        }
    }

    #[test]
    fn heap_op_counters_balance() {
        let g = diamond();
        for kind in HeapKind::ALL {
            let tree = dijkstra_with(kind, &g, 0);
            let s = tree.stats;
            // Every improvement is a push or a decrease-key; the source
            // push is the only queue insertion with no improvement.
            assert_eq!(s.pushes + s.decrease_keys, s.improved + 1, "{kind:?}");
            // Pops (settled) can never exceed insertions.
            assert!(s.settled <= s.pushes, "{kind:?}");
            assert_eq!(s.masked_skips, 0, "{kind:?}");
        }
    }

    #[test]
    fn masked_skips_count_suppressed_edges() {
        let g = diamond();
        // Mask 0→1 (index 0): it is scanned exactly once, from node 0.
        let mut mask = EdgeMask::all_clear(g.edge_count());
        mask.set(0);
        let tree = dijkstra_masked::<FibonacciHeap<Cost>>(&g, 0, &mask);
        assert_eq!(tree.stats.masked_skips, 1);
        let full = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        assert_eq!(full.stats.masked_skips, 0);
    }

    #[test]
    fn workspace_totals_accumulate_and_drain() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new();
        let mut queue: FibonacciHeap<Cost> = FibonacciHeap::with_capacity(g.node_count());
        ws.run(&g, 0, &mut queue);
        let single = ws.stats();
        ws.run(&g, 0, &mut queue);
        let totals = ws.totals();
        assert_eq!(totals.settled, 2 * single.settled);
        assert_eq!(totals.relaxed, 2 * single.relaxed);
        assert_eq!(totals.pushes, 2 * single.pushes);
        let drained = ws.take_totals();
        assert_eq!(drained, totals);
        assert_eq!(ws.totals(), SearchStats::default());
        // Per-run stats are untouched by the drain.
        assert_eq!(ws.stats(), single);
    }

    #[test]
    fn run_to_matches_full_run_on_target() {
        let g = diamond();
        let full = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        let mut ws = DijkstraWorkspace::new();
        let mut queue: FibonacciHeap<Cost> = FibonacciHeap::with_capacity(g.node_count());
        for target in 0..g.node_count() {
            ws.run_to(&g, 0, &mut queue, target);
            assert_eq!(ws.dist()[target], full.dist[target], "dist to {target}");
            assert!(ws.stats().settled <= full.stats.settled);
        }
    }

    #[test]
    fn workspace_adapts_to_graph_size() {
        let small = CsrBuilder::new(1).build();
        let big = diamond();
        let mut ws = DijkstraWorkspace::with_capacity(2);
        let mut queue: BinaryHeap<Cost> = BinaryHeap::with_capacity(big.node_count());
        ws.run(&big, 0, &mut queue);
        assert_eq!(ws.dist().len(), big.node_count());
        ws.run(&small, 0, &mut queue);
        assert_eq!(ws.dist(), &[Cost::ZERO]);
        let tree = ws.into_tree();
        assert_eq!(tree.dist, vec![Cost::ZERO]);
    }
}
