//! Dijkstra's algorithm over the CSR search graphs, generic in the heap.
//!
//! Theorem 1's running time rests on Dijkstra with a Fibonacci heap
//! (`O(m' + n'·log n')` on a graph with `n'` nodes and `m'` edges); the CFZ
//! baseline of Section III-C is charged with an array-scan Dijkstra
//! (`O(n'² + m')`). Both are the same relaxation loop over a different
//! [`IndexedPriorityQueue`], so this module implements it once, generically,
//! and dispatches on [`HeapKind`] for run-time selection.

use crate::csr::CsrGraph;
use crate::Cost;
use heaps::{
    ArrayHeap, BinaryHeap, FibonacciHeap, HeapKind, IndexedPriorityQueue, LeftistHeap,
    PairingHeap, SkewHeap,
};

/// Operation counters from one Dijkstra run, for the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DijkstraStats {
    /// Nodes settled (`pop_min` count).
    pub settled: usize,
    /// Edges relaxed (out-edges scanned from settled nodes).
    pub relaxed: usize,
    /// Successful queue improvements (`push` or effective `decrease_key`).
    pub improved: usize,
}

/// A shortest-path tree: per-node distance and parent pointers.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// `dist[v]` — cost of the shortest path from the source
    /// ([`Cost::INFINITY`] when unreachable).
    pub dist: Vec<Cost>,
    /// `parent[v] = (u, edge_index)` — the tree edge entering `v`.
    pub parent: Vec<Option<(usize, usize)>>,
    /// The source node the tree is rooted at.
    pub source: usize,
    /// Operation counters.
    pub stats: DijkstraStats,
}

impl ShortestPathTree {
    /// The aux-node path from the root to `target` (inclusive), or `None`
    /// when unreachable.
    pub fn path_to(&self, target: usize) -> Option<Vec<usize>> {
        if self.dist[target].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut at = target;
        while let Some((prev, _)) = self.parent[at] {
            path.push(prev);
            at = prev;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

/// Runs Dijkstra from `source` using heap `Q`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use heaps::FibonacciHeap;
/// use wdm_core::{AuxiliaryGraph, dijkstra, WdmNetwork};
/// use wdm_graph::DiGraph;
///
/// let g = DiGraph::from_links(2, [(0, 1)]);
/// let net = WdmNetwork::builder(g, 1).link_wavelengths(0, [(0, 4)]).build()?;
/// let aux = AuxiliaryGraph::for_pair(&net, 0.into(), 1.into());
/// let tree = dijkstra::<FibonacciHeap<_>>(aux.graph(), aux.super_source().unwrap());
/// assert_eq!(tree.dist[aux.super_sink().unwrap()], wdm_core::Cost::new(4));
/// # Ok::<(), wdm_core::WdmError>(())
/// ```
pub fn dijkstra<Q: IndexedPriorityQueue<Cost>>(graph: &CsrGraph, source: usize) -> ShortestPathTree {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range");
    let mut dist = vec![Cost::INFINITY; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut stats = DijkstraStats::default();

    let mut queue = Q::with_capacity(n);
    dist[source] = Cost::ZERO;
    queue.push(source, Cost::ZERO);

    while let Some((u, du)) = queue.pop_min() {
        debug_assert_eq!(du, dist[u]);
        settled[u] = true;
        stats.settled += 1;
        for edge in graph.out_edges(u) {
            stats.relaxed += 1;
            let v = edge.target;
            if settled[v] {
                continue;
            }
            let candidate = du + edge.cost;
            if candidate < dist[v] {
                dist[v] = candidate;
                parent[v] = Some((u, edge.index));
                queue.push_or_decrease(v, candidate);
                stats.improved += 1;
            }
        }
    }

    ShortestPathTree {
        dist,
        parent,
        source,
        stats,
    }
}

/// Runs Dijkstra with a run-time-selected heap.
pub fn dijkstra_with(kind: HeapKind, graph: &CsrGraph, source: usize) -> ShortestPathTree {
    match kind {
        HeapKind::Fibonacci => dijkstra::<FibonacciHeap<Cost>>(graph, source),
        HeapKind::Pairing => dijkstra::<PairingHeap<Cost>>(graph, source),
        HeapKind::Binary => dijkstra::<BinaryHeap<Cost>>(graph, source),
        HeapKind::Array => dijkstra::<ArrayHeap<Cost>>(graph, source),
        HeapKind::Skew => dijkstra::<SkewHeap<Cost>>(graph, source),
        HeapKind::Leftist => dijkstra::<LeftistHeap<Cost>>(graph, source),
    }
}

/// Dijkstra restricted to a subgraph: nodes with `banned_nodes[v] = true`
/// are never entered or left, and edges whose dense index is in
/// `banned_edges` are skipped. Used by Yen's k-shortest-paths spur
/// searches.
///
/// # Panics
///
/// Panics if `source` is out of range or `banned_nodes.len()` differs from
/// the node count. A banned source yields an all-infinite tree.
pub fn dijkstra_filtered(
    graph: &CsrGraph,
    source: usize,
    banned_nodes: &[bool],
    banned_edges: &std::collections::HashSet<usize>,
) -> ShortestPathTree {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range");
    assert_eq!(banned_nodes.len(), n, "one ban flag per node");
    let mut dist = vec![Cost::INFINITY; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut stats = DijkstraStats::default();
    let mut queue: BinaryHeap<Cost> = BinaryHeap::with_capacity(n);

    if !banned_nodes[source] {
        dist[source] = Cost::ZERO;
        queue.push(source, Cost::ZERO);
    }
    while let Some((u, du)) = queue.pop_min() {
        settled[u] = true;
        stats.settled += 1;
        for edge in graph.out_edges(u) {
            stats.relaxed += 1;
            let v = edge.target;
            if settled[v] || banned_nodes[v] || banned_edges.contains(&edge.index) {
                continue;
            }
            let candidate = du + edge.cost;
            if candidate < dist[v] {
                dist[v] = candidate;
                parent[v] = Some((u, edge.index));
                queue.push_or_decrease(v, candidate);
                stats.improved += 1;
            }
        }
    }
    ShortestPathTree {
        dist,
        parent,
        source,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CsrBuilder, EdgeRole};

    /// Small weighted digraph with a known shortest-path structure.
    fn diamond() -> CsrGraph {
        //      1
        //   /     \
        //  0       3 — 4
        //   \     /
        //      2
        let mut b = CsrBuilder::new(5);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::new(1), t);
        b.add_edge(0, 2, Cost::new(4), t);
        b.add_edge(1, 3, Cost::new(10), t);
        b.add_edge(2, 3, Cost::new(2), t);
        b.add_edge(3, 4, Cost::new(3), t);
        b.add_edge(1, 2, Cost::new(1), t);
        b.build()
    }

    fn check_diamond(tree: &ShortestPathTree) {
        assert_eq!(tree.dist[0], Cost::ZERO);
        assert_eq!(tree.dist[1], Cost::new(1));
        assert_eq!(tree.dist[2], Cost::new(2)); // 0→1→2
        assert_eq!(tree.dist[3], Cost::new(4)); // 0→1→2→3
        assert_eq!(tree.dist[4], Cost::new(7));
        assert_eq!(tree.path_to(4), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn all_heaps_agree_on_diamond() {
        let g = diamond();
        for kind in HeapKind::ALL {
            let tree = dijkstra_with(kind, &g, 0);
            check_diamond(&tree);
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1, Cost::new(1), EdgeRole::Tap);
        let g = b.build();
        let tree = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist[2], Cost::INFINITY);
        assert_eq!(tree.path_to(2), None);
        assert_eq!(tree.parent[2], None);
    }

    #[test]
    fn zero_cost_cycles_terminate() {
        let mut b = CsrBuilder::new(3);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::ZERO, t);
        b.add_edge(1, 2, Cost::ZERO, t);
        b.add_edge(2, 0, Cost::ZERO, t);
        let g = b.build();
        let tree = dijkstra::<BinaryHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist, vec![Cost::ZERO; 3]);
        assert_eq!(tree.stats.settled, 3);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut b = CsrBuilder::new(2);
        let t = EdgeRole::Tap;
        b.add_edge(0, 1, Cost::new(9), t);
        b.add_edge(0, 1, Cost::new(2), t);
        b.add_edge(0, 1, Cost::new(5), t);
        let g = b.build();
        let tree = dijkstra::<PairingHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist[1], Cost::new(2));
        let (_, e) = g.edge(tree.parent[1].expect("has parent").1);
        assert_eq!(e.cost, Cost::new(2));
    }

    #[test]
    fn stats_count_work() {
        let g = diamond();
        let tree = dijkstra::<FibonacciHeap<Cost>>(&g, 0);
        assert_eq!(tree.stats.settled, 5);
        assert_eq!(tree.stats.relaxed, 6);
        assert!(tree.stats.improved >= 5);
    }

    #[test]
    fn single_node_graph() {
        let g = CsrBuilder::new(1).build();
        let tree = dijkstra::<ArrayHeap<Cost>>(&g, 0);
        assert_eq!(tree.dist, vec![Cost::ZERO]);
        assert_eq!(tree.path_to(0), Some(vec![0]));
    }
}
