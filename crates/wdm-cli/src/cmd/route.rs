//! `wdm route` — optimal semilightpath for one request, with optional
//! alternates, distributed protocol, CFZ baseline, and a metrics
//! snapshot.

use std::fmt::Write as _;
use std::path::Path;

use wdm_core::{k_shortest_semilightpaths, CfzRouter, LiangShenRouter};
use wdm_distributed::route_distributed;
use wdm_graph::NodeId;
use wdm_obs::MetricsRegistry;

use crate::util::{describe, load, usage_error};
use crate::Command;

/// The `route` subcommand.
pub struct Route;

impl Command for Route {
    fn name(&self) -> &'static str {
        "route"
    }

    fn summary(&self) -> &'static str {
        "route one request optimally (Liang-Shen), with optional extras"
    }

    fn usage(&self) -> &'static str {
        "  wdm route <file.wdm> <src> <dst> [--alternates <k>] [--distributed] [--baseline]
      [--metrics-out <file>] [--trace-out <file>]
      --metrics-out writes a JSON metrics snapshot (route latency,
      search-kernel operation counts) after the query; --trace-out
      provisions the request through a traced engine and writes the
      flight-recorder snapshot as Chrome trace_event JSON (open in
      chrome://tracing or Perfetto)"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        if args.len() < 3 {
            return usage_error(out, "route takes <file> <src> <dst>");
        }
        let path = &args[0];
        let (Ok(s), Ok(t)) = (args[1].parse::<usize>(), args[2].parse::<usize>()) else {
            return usage_error(out, "src/dst must be node indices");
        };
        let mut alternates = 1usize;
        let mut distributed = false;
        let mut baseline = false;
        let mut metrics_out: Option<String> = None;
        let mut trace_out: Option<String> = None;
        let mut it = args[3..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--alternates" => {
                    alternates = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => n,
                        None => return usage_error(out, "bad --alternates"),
                    }
                }
                "--distributed" => distributed = true,
                "--baseline" => baseline = true,
                "--metrics-out" => {
                    metrics_out = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --metrics-out path"),
                    }
                }
                "--trace-out" => {
                    trace_out = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --trace-out path"),
                    }
                }
                other => return usage_error(out, &format!("unknown flag `{other}`")),
            }
        }
        let net = match load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        let (s, t) = (NodeId::new(s), NodeId::new(t));

        let started = std::time::Instant::now();
        let result = match LiangShenRouter::new().route(&net, s, t) {
            Ok(r) => r,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        };
        let route_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match &result.path {
            Some(p) => describe(out, &net, "optimal semilightpath", p),
            None => {
                let _ = writeln!(out, "{s} cannot reach {t} under the wavelength constraints");
            }
        }
        if let Some(metrics_path) = &metrics_out {
            let registry = MetricsRegistry::new();
            registry
                .histogram("wdm_cli_route_latency_ns", &[])
                .observe(route_ns);
            let d = &result.dijkstra;
            registry
                .counter("wdm_core_search_settled_total", &[])
                .add(d.settled as u64);
            registry
                .counter("wdm_core_search_relaxed_total", &[])
                .add(d.relaxed as u64);
            registry
                .counter("wdm_core_search_masked_skips_total", &[])
                .add(d.masked_skips as u64);
            registry
                .counter("wdm_core_search_pushes_total", &[])
                .add(d.pushes as u64);
            registry
                .counter("wdm_core_search_decrease_keys_total", &[])
                .add(d.decrease_keys as u64);
            registry
                .gauge("wdm_core_search_graph_nodes", &[])
                .set(result.search_nodes.min(i64::MAX as usize) as i64);
            registry
                .gauge("wdm_core_search_graph_edges", &[])
                .set(result.search_edges.min(i64::MAX as usize) as i64);
            if let Err(e) = registry.write_json(Path::new(metrics_path)) {
                let _ = writeln!(out, "error: cannot write {metrics_path}: {e}");
                return 1;
            }
            let _ = writeln!(out, "metrics: wrote {metrics_path}");
        }

        if let Some(trace_path) = &trace_out {
            // The routing query above went through the bare router; the
            // trace rides a provisioning engine so the export shows the
            // full request lifecycle (route span, mask flips, verdict).
            let recorder = wdm_obs::trace::FlightRecorder::new(1, 4096);
            let mut engine = wdm_rwa::ProvisioningEngine::new(&net);
            engine.attach_tracer(&recorder);
            let _ = engine.provision(s, t, wdm_rwa::Policy::Optimal);
            if let Err(e) = wdm_obs::trace::export::write_chrome_trace(
                Path::new(trace_path),
                &recorder.snapshot(),
            ) {
                let _ = writeln!(out, "error: cannot write {trace_path}: {e}");
                return 1;
            }
            let _ = writeln!(out, "trace  : wrote {trace_path}");
        }

        if alternates > 1 {
            match k_shortest_semilightpaths(&net, s, t, alternates) {
                Ok(paths) => {
                    for (i, p) in paths.iter().enumerate().skip(1) {
                        describe(out, &net, &format!("alternate #{i}"), p);
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    return 1;
                }
            }
        }

        if distributed {
            match route_distributed(&net, s, t) {
                Ok(d) => {
                    let _ = writeln!(
                        out,
                        "distributed: cost {}, {} data messages, {} acks, makespan {} (terminated: {})",
                        d.cost, d.data_messages, d.ack_messages, d.makespan, d.terminated
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    return 1;
                }
            }
        }

        if baseline {
            match CfzRouter::new().route(&net, s, t) {
                Ok(b) => {
                    let _ = writeln!(
                        out,
                        "cfz baseline: cost {} over {} wavelength-graph nodes",
                        b.cost(),
                        b.search_nodes
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    return 1;
                }
            }
        }
        0
    }
}
