//! `wdm all-pairs` — the Corollary-1 cost matrix, serial or parallel.

use std::fmt::Write as _;

use wdm_graph::NodeId;

use crate::util::{load, usage_error};
use crate::Command;

/// The `all-pairs` subcommand.
pub struct AllPairs;

impl Command for AllPairs {
    fn name(&self) -> &'static str {
        "all-pairs"
    }

    fn summary(&self) -> &'static str {
        "print the all-pairs optimal-cost matrix (Corollary 1)"
    }

    fn usage(&self) -> &'static str {
        "  wdm all-pairs <file.wdm> [--parallel] [--threads <n>]
      --parallel uses all cores; --threads <n> pins the worker count
      (the matrix is identical either way — see AllPairs::solve_parallel)"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut path: Option<&String> = None;
        let mut parallel = false;
        let mut threads: Option<usize> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--parallel" => parallel = true,
                "--threads" => {
                    threads = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --threads (want n >= 1)"),
                        some => some,
                    }
                }
                flag if flag.starts_with("--") => {
                    return usage_error(out, &format!("unknown flag `{flag}`"))
                }
                _ if path.is_none() => path = Some(a),
                extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
            }
        }
        let Some(path) = path else {
            return usage_error(out, "all-pairs takes one file");
        };
        let net = match load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        let n = net.node_count();
        if n > 64 {
            let _ = writeln!(out, "error: all-pairs table limited to 64 nodes (have {n})");
            return 1;
        }
        // `--threads n` implies parallel; bare `--parallel` auto-sizes (0).
        let ap = match (parallel, threads) {
            (_, Some(t)) => {
                wdm_core::AllPairs::solve_parallel(&net, wdm_core::HeapKind::Fibonacci, t)
            }
            (true, None) => {
                wdm_core::AllPairs::solve_parallel(&net, wdm_core::HeapKind::Fibonacci, 0)
            }
            (false, None) => wdm_core::AllPairs::solve(&net),
        };
        let _ = write!(out, "{:>5}", "");
        for t in 0..n {
            let _ = write!(out, "{t:>7}");
        }
        out.push('\n');
        for s in 0..n {
            let _ = write!(out, "{s:>5}");
            for t in 0..n {
                let c = ap.cost(NodeId::new(s), NodeId::new(t));
                if c.is_infinite() {
                    let _ = write!(out, "{:>7}", "∞");
                } else {
                    let _ = write!(out, "{:>7}", c.to_string());
                }
            }
            out.push('\n');
        }
        0
    }
}
