//! `wdm info` — shape and parameters of a `.wdm` instance.

use std::fmt::Write as _;

use crate::util::{load, usage_error};
use crate::Command;

/// The `info` subcommand.
pub struct Info;

impl Command for Info {
    fn name(&self) -> &'static str {
        "info"
    }

    fn summary(&self) -> &'static str {
        "print an instance's shape, parameters, and structural checks"
    }

    fn usage(&self) -> &'static str {
        "  wdm info <file.wdm>"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let [path] = args else {
            return usage_error(out, "info takes exactly one file");
        };
        let net = match load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        let stats = wdm_graph::metrics::DegreeStats::of(net.graph());
        let _ = writeln!(out, "instance  : {path}");
        let _ = writeln!(out, "nodes     : {}", stats.n);
        let _ = writeln!(out, "links     : {}", stats.m);
        let _ = writeln!(out, "max degree: {}", stats.max_degree);
        let _ = writeln!(out, "wavelengths (k)  : {}", net.k());
        let _ = writeln!(out, "per-link max (k0): {}", net.k0());
        let _ = writeln!(out, "Σ|Λ(e)|          : {}", net.multigraph_link_count());
        let _ = writeln!(
            out,
            "strongly connected: {}",
            wdm_graph::metrics::is_strongly_connected(net.graph())
        );
        let _ = writeln!(
            out,
            "Theorem-2 restrictions hold: {}",
            wdm_core::restrictions::theorem2_applies(&net)
        );
        0
    }
}
