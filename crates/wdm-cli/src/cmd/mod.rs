//! The `wdm` subcommands, one module each, all implementing
//! [`Command`](crate::Command). The registry lives in
//! [`COMMANDS`](crate::COMMANDS).

pub mod all_pairs;
pub mod campaign;
pub mod export;
pub mod gen;
pub mod info;
pub mod protect;
pub mod route;
pub mod serve;
pub mod serve_workload;
pub mod trace_check;
