//! `wdm campaign` — Monte-Carlo blocking sweeps and sparse converter
//! placement over the reference WANs.

use std::fmt::Write as _;
use std::path::Path;

use wdm_campaign::{
    build_wan, converter_nodes, e18_record, place_converters, run_campaign, CampaignConfig,
    PlacerConfig,
};
use wdm_graph::topology::ReferenceTopology;
use wdm_rwa::Policy;

use crate::util::{parse_policy, usage_error};
use crate::Command;

/// The `campaign` subcommand.
pub struct Campaign;

/// Parses a comma-separated list of positive finite floats.
fn parse_f64_list(raw: &str) -> Option<Vec<f64>> {
    let values: Option<Vec<f64>> = raw.split(',').map(|v| v.trim().parse().ok()).collect();
    values.filter(|v: &Vec<f64>| !v.is_empty())
}

/// Resolves `--net` into the topologies to sweep.
fn parse_nets(raw: &str) -> Option<Vec<ReferenceTopology>> {
    match raw {
        "all" => Some(ReferenceTopology::ALL.to_vec()),
        "nsfnet" => Some(vec![ReferenceTopology::Nsfnet]),
        "arpanet" => Some(vec![ReferenceTopology::Arpanet]),
        "eon" => Some(vec![ReferenceTopology::Eon]),
        "abilene" => Some(vec![ReferenceTopology::Abilene]),
        "geant" => Some(vec![ReferenceTopology::Geant]),
        _ => None,
    }
}

impl Command for Campaign {
    fn name(&self) -> &'static str {
        "campaign"
    }

    fn summary(&self) -> &'static str {
        "Monte-Carlo blocking-vs-load sweep with converter-density and placement analysis"
    }

    fn usage(&self) -> &'static str {
        "  wdm campaign --net <nsfnet|arpanet|eon|abilene|geant|all> [--k <k>]
      [--loads <a,b,..>] [--densities <a,b,..>] [--requests <n>]
      [--replicas <r>] [--seed <s>] [--threads <t>]
      [--policy optimal|lightpath|first-fit] [--place <budget>]
      [--json <file>]
      sweeps Erlang load × converter density on the named reference
      WAN(s), driving Poisson arrivals with exponential holding times
      through the provisioning engine; reports blocking probability
      with its no-path/capacity cause split per point, and emits one
      e18 BENCH record per point (--json appends them to a file).
      --place greedily spends a budget of runtime-enabled converters
      to minimize blocking, seeded by the blocked-by-cause stats.
      Output is byte-identical for a given seed regardless of
      --threads."
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut nets: Option<Vec<ReferenceTopology>> = None;
        let mut k = 4usize;
        let mut loads = vec![20.0, 30.0, 45.0, 60.0];
        let mut densities = vec![0.0, 0.3, 1.0];
        let mut requests = 400usize;
        let mut replicas = 3usize;
        let mut seed = 0u64;
        let mut threads = 1usize;
        let mut policy = Policy::Optimal;
        let mut place: Option<usize> = None;
        let mut json_path: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--net" => {
                    nets = match it.next().and_then(|v| parse_nets(v)) {
                        Some(n) => Some(n),
                        None => {
                            return usage_error(
                                out,
                                "bad --net (nsfnet|arpanet|eon|abilene|geant|all)",
                            )
                        }
                    }
                }
                "--k" => {
                    k = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --k (want k >= 1)"),
                        Some(v) => v,
                    }
                }
                "--loads" => {
                    loads = match it.next().and_then(|v| parse_f64_list(v)) {
                        Some(l) if l.iter().all(|x| *x > 0.0 && x.is_finite()) => l,
                        _ => return usage_error(out, "bad --loads (want positive erlangs a,b,..)"),
                    }
                }
                "--densities" => {
                    densities = match it.next().and_then(|v| parse_f64_list(v)) {
                        Some(d) if d.iter().all(|x| (0.0..=1.0).contains(x)) => d,
                        _ => return usage_error(out, "bad --densities (want values in [0,1])"),
                    }
                }
                "--requests" => {
                    requests = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --requests (want n >= 1)"),
                        Some(n) => n,
                    }
                }
                "--replicas" => {
                    replicas = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --replicas (want r >= 1)"),
                        Some(r) => r,
                    }
                }
                "--seed" => {
                    seed = match it.next().and_then(|v| v.parse().ok()) {
                        Some(s) => s,
                        None => return usage_error(out, "bad --seed"),
                    }
                }
                "--threads" => {
                    threads = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --threads (want t >= 1)"),
                        Some(t) => t,
                    }
                }
                "--policy" => {
                    policy = match parse_policy(it.next().map(String::as_str)) {
                        Some(p) => p,
                        None => {
                            return usage_error(out, "bad --policy (optimal|lightpath|first-fit)")
                        }
                    }
                }
                "--place" => {
                    place = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            return usage_error(out, "bad --place (want budget >= 1)")
                        }
                        some => some,
                    }
                }
                "--json" => {
                    json_path = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --json path"),
                    }
                }
                flag => return usage_error(out, &format!("unknown flag `{flag}`")),
            }
        }
        let Some(nets) = nets else {
            return usage_error(out, "campaign requires --net");
        };
        let cfg = CampaignConfig {
            k,
            loads,
            densities,
            requests,
            replicas,
            seed,
            threads,
            policy,
        };
        if let Err(e) = cfg.validate() {
            return usage_error(out, &e);
        }

        let mut records: Vec<String> = Vec::new();
        for topo in nets {
            let net = build_wan(topo, cfg.k, cfg.seed);
            let _ = writeln!(
                out,
                "net        : {} (n={}, m={}, k={})",
                topo.name(),
                net.node_count(),
                net.link_count(),
                cfg.k
            );
            let _ = writeln!(
                out,
                "sweep      : {} loads x {} densities, {} requests x {} replicas per point, seed {}",
                cfg.loads.len(),
                cfg.densities.len(),
                cfg.requests,
                cfg.replicas,
                cfg.seed
            );
            let _ = writeln!(out, "policy     : {}", cfg.policy);
            let results = run_campaign(&net, &cfg);
            let mut current_density = f64::NAN;
            for p in &results {
                if p.density != current_density {
                    current_density = p.density;
                    let converters = converter_nodes(&net, p.density, cfg.seed);
                    let ids: Vec<String> =
                        converters.iter().map(|v| v.index().to_string()).collect();
                    let _ = writeln!(
                        out,
                        "density {:<5}: {} converter(s){}{}",
                        p.density,
                        p.converters,
                        if ids.is_empty() { "" } else { " at " },
                        ids.join(",")
                    );
                }
                let _ = writeln!(
                    out,
                    "  load {:>6}  blocking {:.4}  (accepted {}, no-path {}, capacity {})",
                    p.load,
                    p.stats.blocking(),
                    p.stats.accepted,
                    p.stats.no_path,
                    p.stats.capacity
                );
                records.push(e18_record(topo.name(), cfg.k, &cfg, p));
            }
            if let Some(budget) = place {
                let pcfg = PlacerConfig {
                    budget,
                    load: cfg.loads.last().copied().unwrap_or(60.0),
                    requests: cfg.requests,
                    replicas: cfg.replicas,
                    seed: cfg.seed,
                    policy: cfg.policy,
                };
                let placement = place_converters(&net, &pcfg);
                let ids: Vec<String> = placement
                    .chosen
                    .iter()
                    .map(|v| v.index().to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "placement  : budget {budget} at load {} -> [{}], blocking {:.4} -> {:.4}",
                    pcfg.load,
                    ids.join(","),
                    placement.baseline.blocking(),
                    placement.placed.blocking()
                );
                records.push(wdm_campaign::e18_placement_record(
                    topo.name(),
                    cfg.k,
                    &pcfg,
                    &placement,
                ));
            }
        }

        let _ = writeln!(out, "records    : {}", records.len());
        for r in &records {
            let _ = writeln!(out, "{}", r.trim_start());
        }
        if let Some(path) = &json_path {
            let mut body = String::from("[\n");
            body.push_str(&records.join(",\n"));
            body.push_str("\n]\n");
            if let Err(e) = std::fs::write(Path::new(path), body) {
                let _ = writeln!(out, "error: cannot write {path}: {e}");
                return 1;
            }
            let _ = writeln!(out, "json       : wrote {path}");
        }
        0
    }
}
