//! `wdm gen` — generate a random `.wdm` instance over a named or
//! parametric topology.

use std::fmt::Write as _;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::textfmt;

use crate::util::{build_topology, usage_error};
use crate::Command;

/// The `gen` subcommand.
pub struct Gen;

impl Command for Gen {
    fn name(&self) -> &'static str {
        "gen"
    }

    fn summary(&self) -> &'static str {
        "generate a random instance over a named or parametric topology"
    }

    fn usage(&self) -> &'static str {
        "  wdm gen --topology <name> --k <k> [--k0 <k0>] [--seed <s>] [-o <file>]
      topologies: nsfnet | arpanet | eon | abilene | geant |
                  ring:<n> | grid:<r>x<c> | sparse:<n>"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut topo: Option<String> = None;
        let mut k: Option<usize> = None;
        let mut k0: Option<usize> = None;
        let mut seed = 0u64;
        let mut output: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--topology" => topo = it.next().cloned(),
                "--k" => k = it.next().and_then(|v| v.parse().ok()),
                "--k0" => k0 = it.next().and_then(|v| v.parse().ok()),
                "--seed" => {
                    seed = match it.next().and_then(|v| v.parse().ok()) {
                        Some(s) => s,
                        None => return usage_error(out, "bad --seed"),
                    }
                }
                "-o" | "--output" => output = it.next().cloned(),
                other => return usage_error(out, &format!("unknown flag `{other}`")),
            }
        }
        let Some(topo) = topo else {
            return usage_error(out, "missing --topology");
        };
        let Some(k) = k else {
            return usage_error(out, "missing --k");
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = match build_topology(&topo, &mut rng) {
            Ok(g) => g,
            Err(msg) => return usage_error(out, &msg),
        };
        let config = match k0 {
            Some(k0) => InstanceConfig::bounded(k, k0),
            None => InstanceConfig {
                k,
                availability: Availability::Probability(0.6),
                link_cost: (10, 100),
                conversion: ConversionSpec::Uniform { lo: 1, hi: 5 },
            },
        };
        let net = match random_network(graph, &config, &mut rng) {
            Ok(n) => n,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        };
        let text = textfmt::to_text(&net);
        match output {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, text) {
                    let _ = writeln!(out, "error: cannot write {path}: {e}");
                    return 1;
                }
                let _ = writeln!(
                    out,
                    "wrote {path}: n = {}, m = {}, k = {}, k0 = {}",
                    net.node_count(),
                    net.link_count(),
                    net.k(),
                    net.k0()
                );
            }
            None => out.push_str(&text),
        }
        0
    }
}
