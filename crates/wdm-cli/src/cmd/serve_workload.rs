//! `wdm serve-workload` — drive a Poisson or recorded request/release
//! trace through the provisioning engine.

use std::fmt::Write as _;
use std::path::Path;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_obs::MetricsRegistry;
use wdm_rwa::{workload, ConnectionId, Policy, ProvisioningEngine, RoutingMode};

use crate::util::{self, parse_policy, usage_error};
use crate::Command;

/// The `serve-workload` subcommand.
pub struct ServeWorkload;

impl Command for ServeWorkload {
    fn name(&self) -> &'static str {
        "serve-workload"
    }

    fn summary(&self) -> &'static str {
        "replay a dynamic provisioning trace through the engine"
    }

    fn usage(&self) -> &'static str {
        "  wdm serve-workload <file.wdm> [--requests <n>] [--load <erlang>]
      [--holding <mean>] [--seed <s>] [--policy optimal|lightpath|first-fit]
      [--mode masked|rebuild] [--fail-link <id>] [--restore-after <n>]
      [--trace <file>]
      [--metrics-out <file>] [--metrics-interval <n>]
      [--trace-out <file>] [--trace-text <file>] [--trace-sample <n>]
      drives a Poisson request/release trace through the provisioning
      engine; --trace replays a recorded trace file instead (one
      `s t arrival holding` line per request, `#` comments, `inf`
      holding), ignoring --requests/--load/--holding/--seed;
      --mode rebuild reconstructs the auxiliary graph per request
      (reference), --fail-link cuts a fibre halfway through the trace
      (the cut persists until restored), --restore-after n heals that
      fibre again just before request n (must lie past the midpoint
      cut);
      --metrics-out writes a JSON metrics snapshot at the end (and adds
      a request-latency summary to the report), --metrics-interval n
      rewrites a Prometheus text dump at <file>.prom every n requests
      (atomic whole-file replace — scrapers never see a torn file);
      --trace-out attaches a flight recorder and writes its snapshot as
      Chrome trace_event JSON, --trace-text writes the human-readable
      span tree, --trace-sample n tail-samples the snapshot to blocked
      traces plus the slowest n (keeps long runs bounded)"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut path: Option<&String> = None;
        let mut requests = 200usize;
        let mut load = 6.0f64;
        let mut holding = 1.0f64;
        let mut seed = 0u64;
        let mut policy = Policy::Optimal;
        let mut mode = RoutingMode::Masked;
        let mut fail_link: Option<usize> = None;
        let mut restore_after: Option<usize> = None;
        let mut trace_path: Option<String> = None;
        let mut metrics_out: Option<String> = None;
        let mut metrics_interval: Option<usize> = None;
        let mut trace_out: Option<String> = None;
        let mut trace_text: Option<String> = None;
        let mut trace_sample = 0usize;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--requests" => {
                    requests = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => return usage_error(out, "bad --requests (want n >= 1)"),
                        Some(n) => n,
                    }
                }
                "--load" => {
                    load = match it.next().and_then(|v| v.parse().ok()) {
                        Some(l) if l > 0.0 => l,
                        _ => return usage_error(out, "bad --load (want erlang > 0)"),
                    }
                }
                "--holding" => {
                    holding = match it.next().and_then(|v| v.parse().ok()) {
                        Some(h) if h > 0.0 => h,
                        _ => return usage_error(out, "bad --holding (want mean > 0)"),
                    }
                }
                "--seed" => {
                    seed = match it.next().and_then(|v| v.parse().ok()) {
                        Some(s) => s,
                        None => return usage_error(out, "bad --seed"),
                    }
                }
                "--policy" => {
                    policy = match parse_policy(it.next().map(String::as_str)) {
                        Some(p) => p,
                        None => {
                            return usage_error(out, "bad --policy (optimal|lightpath|first-fit)")
                        }
                    }
                }
                "--mode" => {
                    mode = match it.next().map(String::as_str) {
                        Some("masked") => RoutingMode::Masked,
                        Some("rebuild") => RoutingMode::RebuildPerRequest,
                        _ => return usage_error(out, "bad --mode (masked|rebuild)"),
                    }
                }
                "--fail-link" => {
                    fail_link = match it.next().and_then(|v| v.parse().ok()) {
                        Some(e) => Some(e),
                        None => return usage_error(out, "bad --fail-link (want link index)"),
                    }
                }
                "--restore-after" => {
                    restore_after = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => Some(n),
                        None => {
                            return usage_error(out, "bad --restore-after (want request index)")
                        }
                    }
                }
                "--trace" => {
                    trace_path = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --trace path"),
                    }
                }
                "--metrics-out" => {
                    metrics_out = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --metrics-out path"),
                    }
                }
                "--metrics-interval" => {
                    metrics_interval = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            return usage_error(out, "bad --metrics-interval (want n >= 1)")
                        }
                        some => some,
                    }
                }
                "--trace-out" => {
                    trace_out = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --trace-out path"),
                    }
                }
                "--trace-text" => {
                    trace_text = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --trace-text path"),
                    }
                }
                "--trace-sample" => {
                    trace_sample = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => n,
                        None => {
                            return usage_error(
                                out,
                                "bad --trace-sample (want slowest-n count, 0 = keep all)",
                            )
                        }
                    }
                }
                flag if flag.starts_with("--") => {
                    return usage_error(out, &format!("unknown flag `{flag}`"))
                }
                _ if path.is_none() => path = Some(a),
                extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
            }
        }
        let Some(path) = path else {
            return usage_error(out, "serve-workload takes one file");
        };
        if metrics_interval.is_some() && metrics_out.is_none() {
            return usage_error(out, "--metrics-interval requires --metrics-out");
        }
        if restore_after.is_some() && fail_link.is_none() {
            return usage_error(out, "--restore-after requires --fail-link");
        }
        let net = match util::load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        if net.node_count() < 2 {
            let _ = writeln!(out, "error: workload needs at least two nodes");
            return 1;
        }
        // A link index the instance doesn't have is a bad argument, not a
        // runtime failure: reject it as a usage error before the engine
        // (whose `fail_link` asserts the range) ever sees it.
        if let Some(e) = fail_link {
            if e >= net.link_count() {
                return usage_error(
                    out,
                    &format!(
                        "--fail-link {e} out of range (instance has {} links)",
                        net.link_count()
                    ),
                );
            }
        }

        let trace = match &trace_path {
            Some(p) => {
                let text = match std::fs::read_to_string(p) {
                    Ok(t) => t,
                    Err(e) => {
                        let _ = writeln!(out, "error: cannot read trace {p}: {e}");
                        return 1;
                    }
                };
                match workload::parse_trace(&text, net.node_count()) {
                    Ok(reqs) if reqs.is_empty() => {
                        let _ = writeln!(out, "error: trace {p} contains no requests");
                        return 1;
                    }
                    Ok(reqs) => reqs,
                    Err(e) => {
                        let _ = writeln!(out, "error: {p}: {e}");
                        return 1;
                    }
                }
            }
            None => {
                let mut rng = SmallRng::seed_from_u64(seed);
                workload::poisson_requests(net.node_count(), requests, load, holding, &mut rng)
            }
        };
        if trace_sample > 0 && trace_out.is_none() && trace_text.is_none() {
            return usage_error(out, "--trace-sample requires --trace-out or --trace-text");
        }
        let requests = trace.len();
        let mut engine = ProvisioningEngine::with_mode(&net, mode);
        let registry = metrics_out.as_ref().map(|_| MetricsRegistry::new());
        if let Some(registry) = &registry {
            engine.attach_metrics(registry);
        }
        // The single engine runs the whole trace from one thread, so one
        // writer segment suffices; the ring bounds memory for arbitrarily
        // long traces and tail sampling keeps the interesting requests.
        let recorder = (trace_out.is_some() || trace_text.is_some()).then(|| {
            use wdm_obs::trace::{FlightRecorder, TailSampling};
            match trace_sample {
                0 => FlightRecorder::new(1, 1 << 16),
                n => FlightRecorder::with_sampling(1, 1 << 16, TailSampling::keep_slowest(n)),
            }
        });
        if let Some(recorder) = &recorder {
            engine.attach_tracer(recorder);
        }
        // Periodic dumps accumulate in memory and republish the sibling
        // `.prom` file as a whole via an atomic rename, so a concurrent
        // reader (or a crash mid-write) never observes a torn file. The
        // initial empty publish both clears a previous trace's samples
        // and fails fast on an unwritable path.
        let prom_path = match (&metrics_out, metrics_interval) {
            (Some(base), Some(_)) => {
                let p = format!("{base}.prom");
                if let Err(e) = wdm_obs::write_atomic(Path::new(&p), b"") {
                    let _ = writeln!(out, "error: cannot write {p}: {e}");
                    return 1;
                }
                Some(p)
            }
            _ => None,
        };
        let mut prom_accum = String::new();
        let mut dumps = 0usize;

        // Event loop as in `wdm_rwa::simulate`, run inline so the trace can
        // inject a fibre cut halfway and so routing time can be measured.
        let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, ConnectionId)>> =
            std::collections::BinaryHeap::new();
        let (mut accepted, mut blocked) = (0u64, 0u64);
        let (mut lost, mut restored) = (0u64, 0u64);
        let mut peak_active = 0usize;
        let cut_at = fail_link.map(|_| requests / 2);
        // The heal must land while the cut is in effect, or the restore
        // would be a guaranteed no-op — reject it as a usage error now
        // that the trace length (and so the cut point) is known.
        if let (Some(h), Some(cut)) = (restore_after, cut_at) {
            if h <= cut || h >= requests {
                return usage_error(
                    out,
                    &format!("--restore-after {h} must lie in ({cut}, {requests}) — after the midpoint cut, within the trace"),
                );
            }
        }
        let mut healed: Option<bool> = None;
        let started = std::time::Instant::now();
        for (i, req) in trace.iter().enumerate() {
            if let (Some(fl), true) = (fail_link, cut_at == Some(i)) {
                let link = wdm_graph::LinkId::new(fl);
                for (_, outcome) in engine.fail_link(link, policy) {
                    match outcome {
                        Some(_) => restored += 1,
                        None => lost += 1,
                    }
                }
            }
            if let (Some(fl), true) = (fail_link, restore_after == Some(i)) {
                healed = Some(engine.restore_link(wdm_graph::LinkId::new(fl)));
            }
            // f64 arrival times are strictly increasing, so the bit pattern
            // preserves their order and gives the heap a total Ord key.
            while let Some(&std::cmp::Reverse((at, id))) = departures.peek() {
                if f64::from_bits(at) <= req.arrival {
                    departures.pop();
                    // A restoration under --fail-link may have reassigned the
                    // id; skip departures of connections no longer active.
                    let _ = engine.release(id);
                } else {
                    break;
                }
            }
            match engine.provision(req.s, req.t, policy) {
                Ok(id) => {
                    accepted += 1;
                    if req.holding.is_finite() {
                        departures.push(std::cmp::Reverse((
                            (req.arrival + req.holding).to_bits(),
                            id,
                        )));
                    }
                    peak_active = peak_active.max(engine.active_count());
                }
                Err(_) => blocked += 1,
            }
            if let (Some(prom_path), Some(interval), Some(registry)) =
                (&prom_path, metrics_interval, registry.as_ref())
            {
                if (i + 1) % interval == 0 {
                    dumps += 1;
                    let _ = write!(
                        prom_accum,
                        "# dump {dumps} after request {}\n{}",
                        i + 1,
                        registry.render_prometheus()
                    );
                    if let Err(e) =
                        wdm_obs::write_atomic(Path::new(prom_path), prom_accum.as_bytes())
                    {
                        let _ = writeln!(out, "error: cannot write {prom_path}: {e}");
                        return 1;
                    }
                }
            }
        }
        let elapsed = started.elapsed();

        let (_, _, released) = engine.totals();
        let _ = writeln!(out, "instance   : {path}");
        let _ = match &trace_path {
            Some(p) => writeln!(out, "trace      : {requests} requests replayed from {p}"),
            None => writeln!(
                out,
                "trace      : {requests} requests, load {load} erlang, mean holding {holding}, seed {seed}"
            ),
        };
        let _ = writeln!(out, "policy     : {policy}");
        let _ = writeln!(
            out,
            "mode       : {}",
            match mode {
                RoutingMode::Masked => "masked (persistent auxiliary graph)",
                RoutingMode::RebuildPerRequest => "rebuild-per-request (reference)",
            }
        );
        if let (Some(e), Some(cut)) = (fail_link, cut_at) {
            let _ = writeln!(
                out,
                "fibre cut  : link {e} after request {cut} ({restored} restored, {lost} lost)"
            );
        }
        if let (Some(e), Some(h), Some(cleared)) = (fail_link, restore_after, healed) {
            let _ = writeln!(
                out,
                "fibre heal : link {e} after request {h} (cut cleared: {cleared})"
            );
        }
        let _ = writeln!(out, "accepted   : {accepted}");
        let _ = writeln!(out, "blocked    : {blocked}");
        let _ = writeln!(out, "released   : {released}");
        let _ = writeln!(out, "blocking   : {:.4}", blocked as f64 / requests as f64);
        let _ = writeln!(out, "peak active: {peak_active}");
        let _ = writeln!(out, "utilization: {:.4}", engine.utilization());
        let _ = writeln!(
            out,
            "elapsed    : {:.3} ms ({:.0} requests/s)",
            elapsed.as_secs_f64() * 1e3,
            requests as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        if let (Some(registry), Some(metrics_path)) = (&registry, &metrics_out) {
            // The engine shares its instruments through the registry, so the
            // summary reads the same histogram the hot path filled in.
            let lat = registry.histogram("wdm_rwa_provision_latency_ns", &[]);
            let _ = writeln!(
                out,
                "req latency: p50 {:.0} ns, p90 {:.0} ns, p99 {:.0} ns (mean {:.0} ns over {} requests)",
                lat.quantile(0.5),
                lat.quantile(0.9),
                lat.quantile(0.99),
                lat.mean(),
                lat.count()
            );
            if let Err(e) = registry.write_json(Path::new(metrics_path)) {
                let _ = writeln!(out, "error: cannot write {metrics_path}: {e}");
                return 1;
            }
            let _ = writeln!(out, "metrics    : wrote {metrics_path}");
            if let Some(prom_path) = &prom_path {
                let _ = writeln!(out, "prom dumps : {dumps} published to {prom_path}");
            }
        }
        if let Some(recorder) = &recorder {
            let snapshot = recorder.snapshot();
            let _ = writeln!(
                out,
                "trace      : {} records in snapshot ({} recorded, {} dropped)",
                snapshot.records.len(),
                snapshot.recorded,
                snapshot.dropped
            );
            if let Some(p) = &trace_out {
                if let Err(e) = wdm_obs::trace::export::write_chrome_trace(Path::new(p), &snapshot)
                {
                    let _ = writeln!(out, "error: cannot write {p}: {e}");
                    return 1;
                }
                let _ = writeln!(out, "trace json : wrote {p}");
            }
            if let Some(p) = &trace_text {
                if let Err(e) = wdm_obs::trace::export::write_text_tree(Path::new(p), &snapshot) {
                    let _ = writeln!(out, "error: cannot write {p}: {e}");
                    return 1;
                }
                let _ = writeln!(out, "trace text : wrote {p}");
            }
        }
        0
    }
}
