//! `wdm export` — Graphviz DOT with wavelength labels.

use crate::util::{load, usage_error};
use crate::Command;

/// The `export` subcommand.
pub struct Export;

impl Command for Export {
    fn name(&self) -> &'static str {
        "export"
    }

    fn summary(&self) -> &'static str {
        "export an instance as Graphviz DOT with wavelength labels"
    }

    fn usage(&self) -> &'static str {
        "  wdm export <file.wdm>           (Graphviz DOT with wavelength labels)"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let [path] = args else {
            return usage_error(out, "export takes exactly one file");
        };
        let net = match load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        let link_labels: Vec<String> = net
            .graph()
            .links()
            .map(|(e, _)| {
                net.wavelengths_on(e)
                    .iter()
                    .map(|(w, _)| w.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let options = wdm_graph::dot::DotOptions {
            name: "wdm_instance".to_string(),
            node_labels: Vec::new(),
            link_labels,
            merge_fibre_pairs: false,
        };
        out.push_str(&wdm_graph::dot::to_dot(net.graph(), &options));
        0
    }
}
