//! `wdm trace-check` — validate an exported Chrome `trace_event` JSON
//! file against the in-tree schema checker.
//!
//! The CI tracing job round-trips a daemon's `GET /trace` export
//! through this command, proving the file loads in chrome://tracing /
//! Perfetto shape-wise and that specific wire trace ids made it into
//! the recording.

use std::fmt::Write as _;

use crate::util::usage_error;
use crate::Command;

/// The `trace-check` subcommand.
pub struct TraceCheck;

impl Command for TraceCheck {
    fn name(&self) -> &'static str {
        "trace-check"
    }

    fn summary(&self) -> &'static str {
        "validate an exported Chrome trace_event JSON file"
    }

    fn usage(&self) -> &'static str {
        "  wdm trace-check <trace.json> [--expect-trace-id <id>]...
      validates the file against the in-tree Chrome trace_event schema
      checker (the same shape chrome://tracing and Perfetto load) and,
      with --expect-trace-id, requires each given id to appear among
      the recorded events' trace ids"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut path: Option<&String> = None;
        let mut expected: Vec<u64> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--expect-trace-id" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(id) => expected.push(id),
                    None => return usage_error(out, "bad --expect-trace-id (want an integer)"),
                },
                flag if flag.starts_with("--") => {
                    return usage_error(out, &format!("unknown flag `{flag}`"))
                }
                _ if path.is_none() => path = Some(a),
                extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
            }
        }
        let Some(path) = path else {
            return usage_error(out, "trace-check takes one trace.json file");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(out, "error: cannot read {path}: {e}");
                return 1;
            }
        };
        let summary = match wdm_obs::trace::export::validate_chrome_trace(&text) {
            Ok(s) => s,
            Err(e) => {
                let _ = writeln!(out, "error: {path}: {e}");
                return 1;
            }
        };
        let _ = writeln!(
            out,
            "ok: {path}: {} events across {} traces",
            summary.events,
            summary.trace_ids.len()
        );
        let mut missing = 0usize;
        for id in &expected {
            if summary.trace_ids.contains(id) {
                let _ = writeln!(out, "ok: trace id {id} present");
            } else {
                let _ = writeln!(out, "error: trace id {id} missing from {path}");
                missing += 1;
            }
        }
        if missing > 0 {
            return 1;
        }
        0
    }
}
