//! `wdm protect` — a disjoint primary/backup semilightpath pair.

use std::fmt::Write as _;

use wdm_graph::NodeId;

use crate::util::{describe, load, usage_error};
use crate::Command;

/// The `protect` subcommand.
pub struct Protect;

impl Command for Protect {
    fn name(&self) -> &'static str {
        "protect"
    }

    fn summary(&self) -> &'static str {
        "find a disjoint primary/backup semilightpath pair"
    }

    fn usage(&self) -> &'static str {
        "  wdm protect <file.wdm> <src> <dst> [--physical]"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        if args.len() < 3 {
            return usage_error(out, "protect takes <file> <src> <dst>");
        }
        let file = &args[0];
        let (Ok(s), Ok(t)) = (args[1].parse::<usize>(), args[2].parse::<usize>()) else {
            return usage_error(out, "src/dst must be node indices");
        };
        let disjointness = if args[3..].iter().any(|a| a == "--physical") {
            wdm_core::Disjointness::PhysicalLink
        } else {
            wdm_core::Disjointness::LinkWavelength
        };
        let net = match load(file, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        match wdm_core::disjoint_semilightpath_pair(
            &net,
            NodeId::new(s),
            NodeId::new(t),
            disjointness,
        ) {
            Ok(Some(pair)) => {
                describe(out, &net, "primary", &pair.primary);
                describe(out, &net, "backup", &pair.backup);
                let _ = writeln!(
                    out,
                    "total cost {}  (λ-disjoint: {}, fibre-disjoint: {})",
                    pair.total_cost(),
                    pair.is_link_wavelength_disjoint(),
                    pair.is_physical_link_disjoint()
                );
                0
            }
            Ok(None) => {
                let _ = writeln!(out, "no disjoint pair from {s} to {t}");
                0
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        }
    }
}
