//! `wdm serve` — the control-plane daemon: front the provisioning
//! engine over a TCP or unix-socket listener (see the `wdm-serve`
//! crate for the protocol).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use wdm_rwa::{Policy, RoutingMode};
use wdm_serve::{EngineBackend, Listen, Server, ServerConfig};

use crate::util::{load, parse_policy, usage_error};
use crate::Command;

/// The `serve` subcommand.
pub struct Serve;

impl Command for Serve {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn summary(&self) -> &'static str {
        "run the provisioning engine as a long-lived daemon"
    }

    fn usage(&self) -> &'static str {
        "  wdm serve <file.wdm> --listen <host:port | unix:path>
      [--policy optimal|lightpath|first-fit] [--mode masked|rebuild]
      [--sharded] [--shards <n>] [--max-conflicts <n>]
      [--max-inflight <n>] [--ready-file <path>]
      [--trace-buffer <records>] [--trace-sample <n>]
      speaks line-delimited JSON (provision/release/fail-link/batch/
      stats/trace/drain; one request per line, one reply per line) and
      answers HTTP `GET /metrics` and `GET /trace` on the same
      listener; port 0 picks a free port (printed on stdout and, with
      --ready-file, published atomically to a file); --sharded runs the
      lock-free concurrent engine with --shards shards (0 = auto) and a
      per-request retry budget of --max-conflicts; at most
      --max-inflight requests execute at once, the rest are answered
      `overloaded`; --trace-buffer enables the in-memory flight
      recorder (records per writer segment; requests may tag a
      trace_id, GET /trace exports Chrome trace_event JSON) and
      --trace-sample keeps only blocked/contended plus the slowest n
      traces; drain with the `drain` op or SIGTERM"
    }

    fn run(&self, args: &[String], out: &mut String) -> i32 {
        let mut path: Option<&String> = None;
        let mut listen: Option<String> = None;
        let mut policy = Policy::Optimal;
        let mut mode: Option<RoutingMode> = None;
        let mut sharded = false;
        let mut shards = 0usize;
        let mut max_conflicts = 64u64;
        let mut max_inflight = 64usize;
        let mut ready_file: Option<String> = None;
        let mut trace_buffer = 0usize;
        let mut trace_sample = 0usize;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--listen" => {
                    listen = match it.next() {
                        Some(addr) => Some(addr.clone()),
                        None => return usage_error(out, "missing --listen address"),
                    }
                }
                "--policy" => {
                    policy = match parse_policy(it.next().map(String::as_str)) {
                        Some(p) => p,
                        None => {
                            return usage_error(out, "bad --policy (optimal|lightpath|first-fit)")
                        }
                    }
                }
                "--mode" => {
                    mode = match it.next().map(String::as_str) {
                        Some("masked") => Some(RoutingMode::Masked),
                        Some("rebuild") => Some(RoutingMode::RebuildPerRequest),
                        _ => return usage_error(out, "bad --mode (masked|rebuild)"),
                    }
                }
                "--sharded" => sharded = true,
                "--shards" => {
                    shards = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => n,
                        None => return usage_error(out, "bad --shards (want a count, 0 = auto)"),
                    }
                }
                "--max-conflicts" => {
                    max_conflicts = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            return usage_error(out, "bad --max-conflicts (want n >= 1)")
                        }
                        Some(n) => n,
                    }
                }
                "--max-inflight" => {
                    max_inflight = match it.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            return usage_error(out, "bad --max-inflight (want n >= 1)")
                        }
                        Some(n) => n,
                    }
                }
                "--ready-file" => {
                    ready_file = match it.next() {
                        Some(p) => Some(p.clone()),
                        None => return usage_error(out, "missing --ready-file path"),
                    }
                }
                "--trace-buffer" => {
                    trace_buffer = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => n,
                        None => {
                            return usage_error(
                                out,
                                "bad --trace-buffer (want records per segment, 0 = off)",
                            )
                        }
                    }
                }
                "--trace-sample" => {
                    trace_sample = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => n,
                        None => {
                            return usage_error(
                                out,
                                "bad --trace-sample (want slowest-n count, 0 = keep all)",
                            )
                        }
                    }
                }
                flag if flag.starts_with("--") => {
                    return usage_error(out, &format!("unknown flag `{flag}`"))
                }
                _ if path.is_none() => path = Some(a),
                extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
            }
        }
        let Some(path) = path else {
            return usage_error(out, "serve takes one file");
        };
        let Some(listen) = listen else {
            return usage_error(out, "serve requires --listen");
        };
        if sharded && mode.is_some() {
            // The concurrent engine has no rebuild-per-request reference
            // mode; refusing beats silently ignoring the flag.
            return usage_error(out, "--mode applies to the single engine (drop --sharded)");
        }
        let net = match load(path, out) {
            Ok(n) => n,
            Err(code) => return code,
        };
        let backend = if sharded {
            EngineBackend::sharded(&net, shards, max_conflicts, policy)
        } else {
            EngineBackend::single(&net, mode.unwrap_or(RoutingMode::Masked), policy)
        };
        let server = match Server::bind(
            &Listen::parse(&listen),
            backend,
            ServerConfig {
                max_inflight,
                trace_buffer,
                trace_sample,
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                let _ = writeln!(out, "error: cannot bind {listen}: {e}");
                return 1;
            }
        };
        wdm_serve::signal::install();
        let addr = server.local_addr();
        if let Some(ready) = &ready_file {
            // Published atomically so a supervisor polling the file
            // never reads a half-written address.
            if let Err(e) = wdm_obs::write_atomic(Path::new(ready), addr.as_bytes()) {
                let _ = writeln!(out, "error: cannot write {ready}: {e}");
                return 1;
            }
        }
        // The dispatcher prints `out` only after run() returns, so the
        // readiness line must go to stdout directly — clients block on
        // it to learn the bound port.
        println!(
            "wdm serve: listening on {addr} ({} nodes, {} links)",
            net.node_count(),
            net.link_count()
        );
        let _ = std::io::stdout().flush();
        match server.serve() {
            Ok(summary) => {
                let _ = writeln!(out, "drained    : {addr}");
                let _ = writeln!(out, "connections: {}", summary.connections);
                let _ = writeln!(out, "requests   : {}", summary.requests);
                let _ = writeln!(out, "malformed  : {}", summary.malformed);
                let _ = writeln!(out, "overloaded : {}", summary.overloaded);
                0
            }
            Err(e) => {
                let _ = writeln!(out, "error: serve failed: {e}");
                1
            }
        }
    }
}
