//! Helpers shared by the `cmd` modules: instance loading, topology
//! parsing, path pretty-printing, and the usage-error exit path.

use std::fmt::Write as _;
use std::path::Path;

use rand::rngs::SmallRng;
use wdm_core::{textfmt, Semilightpath, WdmNetwork};
use wdm_graph::topology;

/// Reads and parses a `.wdm` instance file, reporting failures to `out`
/// and returning the exit code to propagate.
pub(crate) fn load(path: &str, out: &mut String) -> Result<WdmNetwork, i32> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| {
        let _ = writeln!(out, "error: cannot read {path}: {e}");
        1
    })?;
    textfmt::from_text(&text).map_err(|e| {
        let _ = writeln!(out, "error: {path}: {e}");
        1
    })
}

/// Prints `error: <msg>` plus the full usage text and returns the usage
/// exit code (2).
pub(crate) fn usage_error(out: &mut String, msg: &str) -> i32 {
    let _ = writeln!(out, "error: {msg}\n{}", crate::full_usage());
    2
}

/// Resolves a `--topology` spec (named instance or parametric
/// `ring:`/`grid:`/`sparse:` form) into a digraph.
pub(crate) fn build_topology(spec: &str, rng: &mut SmallRng) -> Result<wdm_graph::DiGraph, String> {
    match spec {
        "nsfnet" => Ok(topology::nsfnet()),
        "arpanet" => Ok(topology::arpanet()),
        "eon" => Ok(topology::eon()),
        "abilene" => Ok(topology::abilene()),
        "geant" => Ok(topology::geant()),
        other => {
            if let Some(n) = other.strip_prefix("ring:") {
                let n: usize = n.parse().map_err(|_| format!("bad ring size `{n}`"))?;
                if n < 3 {
                    return Err("ring needs at least 3 nodes".to_string());
                }
                Ok(topology::ring(n, true))
            } else if let Some(dims) = other.strip_prefix("grid:") {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad grid spec `{dims}` (want RxC)"))?;
                let r: usize = r.parse().map_err(|_| "bad grid rows".to_string())?;
                let c: usize = c.parse().map_err(|_| "bad grid cols".to_string())?;
                if r == 0 || c == 0 {
                    return Err("grid dimensions must be positive".to_string());
                }
                Ok(topology::grid(r, c))
            } else if let Some(n) = other.strip_prefix("sparse:") {
                let n: usize = n.parse().map_err(|_| format!("bad node count `{n}`"))?;
                topology::random_sparse(n, n / 2, 6, rng).map_err(|e| e.to_string())
            } else {
                Err(format!("unknown topology `{other}`"))
            }
        }
    }
}

/// Pretty-prints one semilightpath with its shape and node sequence.
pub(crate) fn describe(out: &mut String, net: &WdmNetwork, label: &str, path: &Semilightpath) {
    let _ = writeln!(out, "{label}: {path}");
    let _ = writeln!(
        out,
        "  {} link(s), {} conversion(s), lightpath: {}",
        path.len(),
        path.conversion_count(),
        path.is_lightpath()
    );
    let seq: Vec<String> = path
        .node_sequence(net)
        .iter()
        .map(|v| v.to_string())
        .collect();
    if !seq.is_empty() {
        let _ = writeln!(out, "  via {}", seq.join(" → "));
    }
}

/// Parses a `--policy` flag value.
pub(crate) fn parse_policy(value: Option<&str>) -> Option<wdm_rwa::Policy> {
    match value {
        Some("optimal") => Some(wdm_rwa::Policy::Optimal),
        Some("lightpath") => Some(wdm_rwa::Policy::LightpathOnly),
        Some("first-fit") => Some(wdm_rwa::Policy::FirstFit),
        _ => None,
    }
}
