//! Implementation of the `wdm` command-line tool.
//!
//! The binary wraps the library for shell use over `.wdm` instance files
//! (the plain-text format of [`wdm_core::textfmt`]):
//!
//! ```text
//! wdm gen --topology nsfnet --k 8 --seed 1 -o nsf.wdm   # make an instance
//! wdm info nsf.wdm                                      # shape + parameters
//! wdm route nsf.wdm 0 13                                # optimal semilightpath
//! wdm route nsf.wdm 0 13 --alternates 3                 # k cheapest routes
//! wdm route nsf.wdm 0 13 --distributed                  # Theorem-3 protocol
//! wdm route nsf.wdm 0 13 --baseline                     # CFZ comparison
//! wdm all-pairs nsf.wdm                                 # Corollary-1 matrix
//! wdm serve-workload nsf.wdm --requests 500             # dynamic provisioning trace
//! wdm serve-workload nsf.wdm --metrics-out m.json       # …with a metrics snapshot
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); [`run`] is the testable entry point — it takes the raw
//! argument list and a writer, and returns the process exit code.

use std::fmt::Write as _;
use std::path::Path;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm_core::{
    k_shortest_semilightpaths, textfmt, AllPairs, CfzRouter, LiangShenRouter, Semilightpath,
    WdmNetwork,
};
use wdm_distributed::route_distributed;
use wdm_graph::{topology, NodeId};
use wdm_obs::MetricsRegistry;
use wdm_rwa::{workload, ConnectionId, Policy, ProvisioningEngine, RoutingMode};

/// Runs the CLI with `args` (excluding the program name), writing output
/// to `out`. Returns the exit code (0 success, 2 usage error, 1 runtime
/// failure).
pub fn run(args: &[String], out: &mut String) -> i32 {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..], out),
        Some("info") => cmd_info(&args[1..], out),
        Some("route") => cmd_route(&args[1..], out),
        Some("all-pairs") => cmd_all_pairs(&args[1..], out),
        Some("protect") => cmd_protect(&args[1..], out),
        Some("serve-workload") => cmd_serve_workload(&args[1..], out),
        Some("export") => cmd_export(&args[1..], out),
        Some("--help") | Some("-h") | Some("help") | None => {
            let _ = writeln!(out, "{USAGE}");
            0
        }
        Some(other) => {
            let _ = writeln!(out, "unknown command `{other}`\n{USAGE}");
            2
        }
    }
}

const USAGE: &str = "wdm — optimal lightpath/semilightpath routing (Liang & Shen)

USAGE:
  wdm gen --topology <name> --k <k> [--k0 <k0>] [--seed <s>] [-o <file>]
      topologies: nsfnet | arpanet | eon | abilene | geant |
                  ring:<n> | grid:<r>x<c> | sparse:<n>
  wdm info <file.wdm>
  wdm route <file.wdm> <src> <dst> [--alternates <k>] [--distributed] [--baseline]
      [--metrics-out <file>]
      --metrics-out writes a JSON metrics snapshot (route latency,
      search-kernel operation counts) after the query
  wdm all-pairs <file.wdm> [--parallel] [--threads <n>]
      --parallel uses all cores; --threads <n> pins the worker count
      (the matrix is identical either way — see AllPairs::solve_parallel)
  wdm protect <file.wdm> <src> <dst> [--physical]
  wdm serve-workload <file.wdm> [--requests <n>] [--load <erlang>]
      [--holding <mean>] [--seed <s>] [--policy optimal|lightpath|first-fit]
      [--mode masked|rebuild] [--fail-link <id>] [--trace <file>]
      [--metrics-out <file>] [--metrics-interval <n>]
      drives a Poisson request/release trace through the provisioning
      engine; --trace replays a recorded trace file instead (one
      `s t arrival holding` line per request, `#` comments, `inf`
      holding), ignoring --requests/--load/--holding/--seed;
      --mode rebuild reconstructs the auxiliary graph per request
      (reference), --fail-link cuts a fibre halfway through the trace;
      --metrics-out writes a JSON metrics snapshot at the end (and adds
      a request-latency summary to the report), --metrics-interval n
      appends a Prometheus text dump to <file>.prom every n requests
  wdm export <file.wdm>           (Graphviz DOT with wavelength labels)
  wdm help";

fn cmd_gen(args: &[String], out: &mut String) -> i32 {
    let mut topo: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut k0: Option<usize> = None;
    let mut seed = 0u64;
    let mut output: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--topology" => topo = it.next().cloned(),
            "--k" => k = it.next().and_then(|v| v.parse().ok()),
            "--k0" => k0 = it.next().and_then(|v| v.parse().ok()),
            "--seed" => {
                seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => return usage_error(out, "bad --seed"),
                }
            }
            "-o" | "--output" => output = it.next().cloned(),
            other => return usage_error(out, &format!("unknown flag `{other}`")),
        }
    }
    let Some(topo) = topo else {
        return usage_error(out, "missing --topology");
    };
    let Some(k) = k else {
        return usage_error(out, "missing --k");
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = match build_topology(&topo, &mut rng) {
        Ok(g) => g,
        Err(msg) => return usage_error(out, &msg),
    };
    let config = match k0 {
        Some(k0) => InstanceConfig::bounded(k, k0),
        None => InstanceConfig {
            k,
            availability: Availability::Probability(0.6),
            link_cost: (10, 100),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 5 },
        },
    };
    let net = match random_network(graph, &config, &mut rng) {
        Ok(n) => n,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    let text = textfmt::to_text(&net);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                let _ = writeln!(out, "error: cannot write {path}: {e}");
                return 1;
            }
            let _ = writeln!(
                out,
                "wrote {path}: n = {}, m = {}, k = {}, k0 = {}",
                net.node_count(),
                net.link_count(),
                net.k(),
                net.k0()
            );
        }
        None => out.push_str(&text),
    }
    0
}

fn build_topology(spec: &str, rng: &mut SmallRng) -> Result<wdm_graph::DiGraph, String> {
    match spec {
        "nsfnet" => Ok(topology::nsfnet()),
        "arpanet" => Ok(topology::arpanet()),
        "eon" => Ok(topology::eon()),
        "abilene" => Ok(topology::abilene()),
        "geant" => Ok(topology::geant()),
        other => {
            if let Some(n) = other.strip_prefix("ring:") {
                let n: usize = n.parse().map_err(|_| format!("bad ring size `{n}`"))?;
                if n < 3 {
                    return Err("ring needs at least 3 nodes".to_string());
                }
                Ok(topology::ring(n, true))
            } else if let Some(dims) = other.strip_prefix("grid:") {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad grid spec `{dims}` (want RxC)"))?;
                let r: usize = r.parse().map_err(|_| "bad grid rows".to_string())?;
                let c: usize = c.parse().map_err(|_| "bad grid cols".to_string())?;
                if r == 0 || c == 0 {
                    return Err("grid dimensions must be positive".to_string());
                }
                Ok(topology::grid(r, c))
            } else if let Some(n) = other.strip_prefix("sparse:") {
                let n: usize = n.parse().map_err(|_| format!("bad node count `{n}`"))?;
                topology::random_sparse(n, n / 2, 6, rng).map_err(|e| e.to_string())
            } else {
                Err(format!("unknown topology `{other}`"))
            }
        }
    }
}

fn load(path: &str, out: &mut String) -> Result<WdmNetwork, i32> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| {
        let _ = writeln!(out, "error: cannot read {path}: {e}");
        1
    })?;
    textfmt::from_text(&text).map_err(|e| {
        let _ = writeln!(out, "error: {path}: {e}");
        1
    })
}

fn cmd_info(args: &[String], out: &mut String) -> i32 {
    let [path] = args else {
        return usage_error(out, "info takes exactly one file");
    };
    let net = match load(path, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let stats = wdm_graph::metrics::DegreeStats::of(net.graph());
    let _ = writeln!(out, "instance  : {path}");
    let _ = writeln!(out, "nodes     : {}", stats.n);
    let _ = writeln!(out, "links     : {}", stats.m);
    let _ = writeln!(out, "max degree: {}", stats.max_degree);
    let _ = writeln!(out, "wavelengths (k)  : {}", net.k());
    let _ = writeln!(out, "per-link max (k0): {}", net.k0());
    let _ = writeln!(out, "Σ|Λ(e)|          : {}", net.multigraph_link_count());
    let _ = writeln!(
        out,
        "strongly connected: {}",
        wdm_graph::metrics::is_strongly_connected(net.graph())
    );
    let _ = writeln!(
        out,
        "Theorem-2 restrictions hold: {}",
        wdm_core::restrictions::theorem2_applies(&net)
    );
    0
}

fn describe(out: &mut String, net: &WdmNetwork, label: &str, path: &Semilightpath) {
    let _ = writeln!(out, "{label}: {path}");
    let _ = writeln!(
        out,
        "  {} link(s), {} conversion(s), lightpath: {}",
        path.len(),
        path.conversion_count(),
        path.is_lightpath()
    );
    let seq: Vec<String> = path
        .node_sequence(net)
        .iter()
        .map(|v| v.to_string())
        .collect();
    if !seq.is_empty() {
        let _ = writeln!(out, "  via {}", seq.join(" → "));
    }
}

fn cmd_route(args: &[String], out: &mut String) -> i32 {
    if args.len() < 3 {
        return usage_error(out, "route takes <file> <src> <dst>");
    }
    let path = &args[0];
    let (Ok(s), Ok(t)) = (args[1].parse::<usize>(), args[2].parse::<usize>()) else {
        return usage_error(out, "src/dst must be node indices");
    };
    let mut alternates = 1usize;
    let mut distributed = false;
    let mut baseline = false;
    let mut metrics_out: Option<String> = None;
    let mut it = args[3..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alternates" => {
                alternates = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage_error(out, "bad --alternates"),
                }
            }
            "--distributed" => distributed = true,
            "--baseline" => baseline = true,
            "--metrics-out" => {
                metrics_out = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error(out, "missing --metrics-out path"),
                }
            }
            other => return usage_error(out, &format!("unknown flag `{other}`")),
        }
    }
    let net = match load(path, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let (s, t) = (NodeId::new(s), NodeId::new(t));

    let started = std::time::Instant::now();
    let result = match LiangShenRouter::new().route(&net, s, t) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    let route_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    match &result.path {
        Some(p) => describe(out, &net, "optimal semilightpath", p),
        None => {
            let _ = writeln!(out, "{s} cannot reach {t} under the wavelength constraints");
        }
    }
    if let Some(metrics_path) = &metrics_out {
        let registry = MetricsRegistry::new();
        registry
            .histogram("wdm_cli_route_latency_ns", &[])
            .observe(route_ns);
        let d = &result.dijkstra;
        registry
            .counter("wdm_core_search_settled_total", &[])
            .add(d.settled as u64);
        registry
            .counter("wdm_core_search_relaxed_total", &[])
            .add(d.relaxed as u64);
        registry
            .counter("wdm_core_search_masked_skips_total", &[])
            .add(d.masked_skips as u64);
        registry
            .counter("wdm_core_search_pushes_total", &[])
            .add(d.pushes as u64);
        registry
            .counter("wdm_core_search_decrease_keys_total", &[])
            .add(d.decrease_keys as u64);
        registry
            .gauge("wdm_core_search_graph_nodes", &[])
            .set(result.search_nodes.min(i64::MAX as usize) as i64);
        registry
            .gauge("wdm_core_search_graph_edges", &[])
            .set(result.search_edges.min(i64::MAX as usize) as i64);
        if let Err(e) = registry.write_json(Path::new(metrics_path)) {
            let _ = writeln!(out, "error: cannot write {metrics_path}: {e}");
            return 1;
        }
        let _ = writeln!(out, "metrics: wrote {metrics_path}");
    }

    if alternates > 1 {
        match k_shortest_semilightpaths(&net, s, t, alternates) {
            Ok(paths) => {
                for (i, p) in paths.iter().enumerate().skip(1) {
                    describe(out, &net, &format!("alternate #{i}"), p);
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    }

    if distributed {
        match route_distributed(&net, s, t) {
            Ok(d) => {
                let _ = writeln!(
                    out,
                    "distributed: cost {}, {} data messages, {} acks, makespan {} (terminated: {})",
                    d.cost, d.data_messages, d.ack_messages, d.makespan, d.terminated
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    }

    if baseline {
        match CfzRouter::new().route(&net, s, t) {
            Ok(b) => {
                let _ = writeln!(
                    out,
                    "cfz baseline: cost {} over {} wavelength-graph nodes",
                    b.cost(),
                    b.search_nodes
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_protect(args: &[String], out: &mut String) -> i32 {
    if args.len() < 3 {
        return usage_error(out, "protect takes <file> <src> <dst>");
    }
    let file = &args[0];
    let (Ok(s), Ok(t)) = (args[1].parse::<usize>(), args[2].parse::<usize>()) else {
        return usage_error(out, "src/dst must be node indices");
    };
    let disjointness = if args[3..].iter().any(|a| a == "--physical") {
        wdm_core::Disjointness::PhysicalLink
    } else {
        wdm_core::Disjointness::LinkWavelength
    };
    let net = match load(file, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    match wdm_core::disjoint_semilightpath_pair(&net, NodeId::new(s), NodeId::new(t), disjointness)
    {
        Ok(Some(pair)) => {
            describe(out, &net, "primary", &pair.primary);
            describe(out, &net, "backup", &pair.backup);
            let _ = writeln!(
                out,
                "total cost {}  (λ-disjoint: {}, fibre-disjoint: {})",
                pair.total_cost(),
                pair.is_link_wavelength_disjoint(),
                pair.is_physical_link_disjoint()
            );
            0
        }
        Ok(None) => {
            let _ = writeln!(out, "no disjoint pair from {s} to {t}");
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

fn cmd_serve_workload(args: &[String], out: &mut String) -> i32 {
    let mut path: Option<&String> = None;
    let mut requests = 200usize;
    let mut load = 6.0f64;
    let mut holding = 1.0f64;
    let mut seed = 0u64;
    let mut policy = Policy::Optimal;
    let mut mode = RoutingMode::Masked;
    let mut fail_link: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_interval: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => {
                requests = match it.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => return usage_error(out, "bad --requests (want n >= 1)"),
                    Some(n) => n,
                }
            }
            "--load" => {
                load = match it.next().and_then(|v| v.parse().ok()) {
                    Some(l) if l > 0.0 => l,
                    _ => return usage_error(out, "bad --load (want erlang > 0)"),
                }
            }
            "--holding" => {
                holding = match it.next().and_then(|v| v.parse().ok()) {
                    Some(h) if h > 0.0 => h,
                    _ => return usage_error(out, "bad --holding (want mean > 0)"),
                }
            }
            "--seed" => {
                seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => return usage_error(out, "bad --seed"),
                }
            }
            "--policy" => {
                policy = match it.next().map(String::as_str) {
                    Some("optimal") => Policy::Optimal,
                    Some("lightpath") => Policy::LightpathOnly,
                    Some("first-fit") => Policy::FirstFit,
                    _ => return usage_error(out, "bad --policy (optimal|lightpath|first-fit)"),
                }
            }
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some("masked") => RoutingMode::Masked,
                    Some("rebuild") => RoutingMode::RebuildPerRequest,
                    _ => return usage_error(out, "bad --mode (masked|rebuild)"),
                }
            }
            "--fail-link" => {
                fail_link = match it.next().and_then(|v| v.parse().ok()) {
                    Some(e) => Some(e),
                    None => return usage_error(out, "bad --fail-link (want link index)"),
                }
            }
            "--trace" => {
                trace_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error(out, "missing --trace path"),
                }
            }
            "--metrics-out" => {
                metrics_out = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error(out, "missing --metrics-out path"),
                }
            }
            "--metrics-interval" => {
                metrics_interval = match it.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => {
                        return usage_error(out, "bad --metrics-interval (want n >= 1)")
                    }
                    some => some,
                }
            }
            flag if flag.starts_with("--") => {
                return usage_error(out, &format!("unknown flag `{flag}`"))
            }
            _ if path.is_none() => path = Some(a),
            extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
        }
    }
    let Some(path) = path else {
        return usage_error(out, "serve-workload takes one file");
    };
    if metrics_interval.is_some() && metrics_out.is_none() {
        return usage_error(out, "--metrics-interval requires --metrics-out");
    }
    // `self::` because the `--load` flag variable shadows the loader fn.
    let net = match self::load(path, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    if net.node_count() < 2 {
        let _ = writeln!(out, "error: workload needs at least two nodes");
        return 1;
    }
    if let Some(e) = fail_link {
        if e >= net.link_count() {
            let _ = writeln!(
                out,
                "error: --fail-link {e} out of range (instance has {} links)",
                net.link_count()
            );
            return 1;
        }
    }

    let trace = match &trace_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    let _ = writeln!(out, "error: cannot read trace {p}: {e}");
                    return 1;
                }
            };
            match workload::parse_trace(&text, net.node_count()) {
                Ok(reqs) if reqs.is_empty() => {
                    let _ = writeln!(out, "error: trace {p} contains no requests");
                    return 1;
                }
                Ok(reqs) => reqs,
                Err(e) => {
                    let _ = writeln!(out, "error: {p}: {e}");
                    return 1;
                }
            }
        }
        None => {
            let mut rng = SmallRng::seed_from_u64(seed);
            workload::poisson_requests(net.node_count(), requests, load, holding, &mut rng)
        }
    };
    let requests = trace.len();
    let mut engine = ProvisioningEngine::with_mode(&net, mode);
    let registry = metrics_out.as_ref().map(|_| MetricsRegistry::new());
    if let Some(registry) = &registry {
        engine.attach_metrics(registry);
    }
    // Periodic dumps append to a sibling `.prom` file; start it empty so
    // a rerun doesn't inherit a previous trace's samples.
    let prom_path = match (&metrics_out, metrics_interval) {
        (Some(base), Some(_)) => {
            let p = format!("{base}.prom");
            if let Err(e) = std::fs::write(&p, "") {
                let _ = writeln!(out, "error: cannot write {p}: {e}");
                return 1;
            }
            Some(p)
        }
        _ => None,
    };
    let mut dumps = 0usize;

    // Event loop as in `wdm_rwa::simulate`, run inline so the trace can
    // inject a fibre cut halfway and so routing time can be measured.
    let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, ConnectionId)>> =
        std::collections::BinaryHeap::new();
    let (mut accepted, mut blocked) = (0u64, 0u64);
    let (mut lost, mut restored) = (0u64, 0u64);
    let mut peak_active = 0usize;
    let cut_at = fail_link.map(|_| requests / 2);
    let started = std::time::Instant::now();
    for (i, req) in trace.iter().enumerate() {
        if let (Some(fl), true) = (fail_link, cut_at == Some(i)) {
            let link = wdm_graph::LinkId::new(fl);
            for (_, outcome) in engine.fail_link(link, policy) {
                match outcome {
                    Some(_) => restored += 1,
                    None => lost += 1,
                }
            }
        }
        // f64 arrival times are strictly increasing, so the bit pattern
        // preserves their order and gives the heap a total Ord key.
        while let Some(&std::cmp::Reverse((at, id))) = departures.peek() {
            if f64::from_bits(at) <= req.arrival {
                departures.pop();
                // A restoration under --fail-link may have reassigned the
                // id; skip departures of connections no longer active.
                let _ = engine.release(id);
            } else {
                break;
            }
        }
        match engine.provision(req.s, req.t, policy) {
            Ok(id) => {
                accepted += 1;
                if req.holding.is_finite() {
                    departures.push(std::cmp::Reverse((
                        (req.arrival + req.holding).to_bits(),
                        id,
                    )));
                }
                peak_active = peak_active.max(engine.active_count());
            }
            Err(_) => blocked += 1,
        }
        if let (Some(prom_path), Some(interval), Some(registry)) =
            (&prom_path, metrics_interval, registry.as_ref())
        {
            if (i + 1) % interval == 0 {
                dumps += 1;
                let text = format!(
                    "# dump {dumps} after request {}\n{}",
                    i + 1,
                    registry.render_prometheus()
                );
                use std::io::Write as _;
                let appended = std::fs::OpenOptions::new()
                    .append(true)
                    .open(prom_path)
                    .and_then(|mut f| f.write_all(text.as_bytes()));
                if let Err(e) = appended {
                    let _ = writeln!(out, "error: cannot append to {prom_path}: {e}");
                    return 1;
                }
            }
        }
    }
    let elapsed = started.elapsed();

    let (_, _, released) = engine.totals();
    let _ = writeln!(out, "instance   : {path}");
    let _ = match &trace_path {
        Some(p) => writeln!(out, "trace      : {requests} requests replayed from {p}"),
        None => writeln!(
            out,
            "trace      : {requests} requests, load {load} erlang, mean holding {holding}, seed {seed}"
        ),
    };
    let _ = writeln!(out, "policy     : {policy}");
    let _ = writeln!(
        out,
        "mode       : {}",
        match mode {
            RoutingMode::Masked => "masked (persistent auxiliary graph)",
            RoutingMode::RebuildPerRequest => "rebuild-per-request (reference)",
        }
    );
    if let (Some(e), Some(cut)) = (fail_link, cut_at) {
        let _ = writeln!(
            out,
            "fibre cut  : link {e} after request {cut} ({restored} restored, {lost} lost)"
        );
    }
    let _ = writeln!(out, "accepted   : {accepted}");
    let _ = writeln!(out, "blocked    : {blocked}");
    let _ = writeln!(out, "released   : {released}");
    let _ = writeln!(out, "blocking   : {:.4}", blocked as f64 / requests as f64);
    let _ = writeln!(out, "peak active: {peak_active}");
    let _ = writeln!(out, "utilization: {:.4}", engine.utilization());
    let _ = writeln!(
        out,
        "elapsed    : {:.3} ms ({:.0} requests/s)",
        elapsed.as_secs_f64() * 1e3,
        requests as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let (Some(registry), Some(metrics_path)) = (&registry, &metrics_out) {
        // The engine shares its instruments through the registry, so the
        // summary reads the same histogram the hot path filled in.
        let lat = registry.histogram("wdm_rwa_provision_latency_ns", &[]);
        let _ = writeln!(
            out,
            "req latency: p50 {:.0} ns, p90 {:.0} ns, p99 {:.0} ns (mean {:.0} ns over {} requests)",
            lat.quantile(0.5),
            lat.quantile(0.9),
            lat.quantile(0.99),
            lat.mean(),
            lat.count()
        );
        if let Err(e) = registry.write_json(Path::new(metrics_path)) {
            let _ = writeln!(out, "error: cannot write {metrics_path}: {e}");
            return 1;
        }
        let _ = writeln!(out, "metrics    : wrote {metrics_path}");
        if let Some(prom_path) = &prom_path {
            let _ = writeln!(out, "prom dumps : {dumps} appended to {prom_path}");
        }
    }
    0
}

fn cmd_all_pairs(args: &[String], out: &mut String) -> i32 {
    let mut path: Option<&String> = None;
    let mut parallel = false;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--parallel" => parallel = true,
            "--threads" => {
                threads = match it.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => return usage_error(out, "bad --threads (want n >= 1)"),
                    some => some,
                }
            }
            flag if flag.starts_with("--") => {
                return usage_error(out, &format!("unknown flag `{flag}`"))
            }
            _ if path.is_none() => path = Some(a),
            extra => return usage_error(out, &format!("unexpected argument `{extra}`")),
        }
    }
    let Some(path) = path else {
        return usage_error(out, "all-pairs takes one file");
    };
    let net = match load(path, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let n = net.node_count();
    if n > 64 {
        let _ = writeln!(out, "error: all-pairs table limited to 64 nodes (have {n})");
        return 1;
    }
    // `--threads n` implies parallel; bare `--parallel` auto-sizes (0).
    let ap = match (parallel, threads) {
        (_, Some(t)) => AllPairs::solve_parallel(&net, wdm_core::HeapKind::Fibonacci, t),
        (true, None) => AllPairs::solve_parallel(&net, wdm_core::HeapKind::Fibonacci, 0),
        (false, None) => AllPairs::solve(&net),
    };
    let _ = write!(out, "{:>5}", "");
    for t in 0..n {
        let _ = write!(out, "{t:>7}");
    }
    out.push('\n');
    for s in 0..n {
        let _ = write!(out, "{s:>5}");
        for t in 0..n {
            let c = ap.cost(NodeId::new(s), NodeId::new(t));
            if c.is_infinite() {
                let _ = write!(out, "{:>7}", "∞");
            } else {
                let _ = write!(out, "{:>7}", c.to_string());
            }
        }
        out.push('\n');
    }
    0
}

fn cmd_export(args: &[String], out: &mut String) -> i32 {
    let [path] = args else {
        return usage_error(out, "export takes exactly one file");
    };
    let net = match load(path, out) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let link_labels: Vec<String> = net
        .graph()
        .links()
        .map(|(e, _)| {
            net.wavelengths_on(e)
                .iter()
                .map(|(w, _)| w.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    let options = wdm_graph::dot::DotOptions {
        name: "wdm_instance".to_string(),
        node_labels: Vec::new(),
        link_labels,
        merge_fibre_pairs: false,
    };
    out.push_str(&wdm_graph::dot::to_dot(net.graph(), &options));
    0
}

fn usage_error(out: &mut String, msg: &str) -> i32 {
    let _ = writeln!(out, "error: {msg}\n{USAGE}");
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        (code, out)
    }

    #[test]
    fn help_and_unknown_command() {
        let (code, out) = run_args(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let (code, out) = run_args(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
        let (code, _) = run_args(&[]);
        assert_eq!(code, 0);
    }

    #[test]
    fn gen_to_stdout_parses_back() {
        let (code, out) = run_args(&["gen", "--topology", "abilene", "--k", "3"]);
        assert_eq!(code, 0, "{out}");
        let net = textfmt::from_text(&out).expect("generated instance parses");
        assert_eq!(net.node_count(), 11);
        assert_eq!(net.k(), 3);
    }

    #[test]
    fn gen_parametric_topologies() {
        for (spec, nodes) in [("ring:8", 8), ("grid:2x3", 6), ("sparse:12", 12)] {
            let (code, out) = run_args(&["gen", "--topology", spec, "--k", "2"]);
            assert_eq!(code, 0, "{spec}: {out}");
            let net = textfmt::from_text(&out).expect("parses");
            assert_eq!(net.node_count(), nodes, "{spec}");
        }
    }

    #[test]
    fn gen_rejects_bad_specs() {
        for bad in ["ring:2", "grid:0x3", "grid:3", "nope", "sparse:x"] {
            let (code, _) = run_args(&["gen", "--topology", bad, "--k", "2"]);
            assert_eq!(code, 2, "{bad} should be rejected");
        }
        let (code, _) = run_args(&["gen", "--k", "2"]);
        assert_eq!(code, 2);
        let (code, _) = run_args(&["gen", "--topology", "nsfnet"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn full_file_workflow() {
        let dir = std::env::temp_dir().join("wdm-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("test.wdm");
        let file_s = file.to_str().expect("utf8").to_string();

        let (code, out) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "4",
            "--seed",
            "7",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote"));

        let (code, out) = run_args(&["info", &file_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("nodes     : 14"));
        assert!(out.contains("strongly connected: true"));

        let (code, out) = run_args(&[
            "route",
            &file_s,
            "0",
            "13",
            "--alternates",
            "3",
            "--baseline",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("optimal semilightpath") || out.contains("cannot reach"));
        if out.contains("optimal semilightpath") {
            assert!(out.contains("cfz baseline"));
        }

        let (code, out) = run_args(&["route", &file_s, "0", "5", "--distributed"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("distributed:"));

        let (code, out) = run_args(&["all-pairs", &file_s]);
        assert_eq!(code, 0, "{out}");
        // Diagonal is zero.
        assert!(out.contains('0'));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn route_usage_errors() {
        let (code, _) = run_args(&["route", "file.wdm"]);
        assert_eq!(code, 2);
        let (code, _) = run_args(&["route", "file.wdm", "a", "b"]);
        assert_eq!(code, 2);
        let (code, out) = run_args(&["route", "/nonexistent.wdm", "0", "1"]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"));
    }

    #[test]
    fn export_produces_dot() {
        let dir = std::env::temp_dir().join("wdm-cli-test-export");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("x.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&["gen", "--topology", "ring:5", "--k", "2", "-o", &file_s]);
        assert_eq!(code, 0);
        let (code, out) = run_args(&["export", &file_s]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph"));
        assert!(out.contains("λ"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn protect_runs_on_generated_instance() {
        let dir = std::env::temp_dir().join("wdm-cli-test-protect");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("p.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "6",
            "--seed",
            "2",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0);
        let (code, out) = run_args(&["protect", &file_s, "0", "13"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("primary") || out.contains("no disjoint pair"));
        let (code, _) = run_args(&["protect", &file_s, "0", "13", "--physical"]);
        assert_eq!(code, 0);
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn all_pairs_parallel_flags() {
        let dir = std::env::temp_dir().join("wdm-cli-test-parallel");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("ap.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "4",
            "--seed",
            "9",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0);

        let (code, serial) = run_args(&["all-pairs", &file_s]);
        assert_eq!(code, 0, "{serial}");
        // Determinism contract: the printed matrix is byte-identical
        // however the computation is spread across threads.
        for extra in [
            vec!["--parallel"],
            vec!["--threads", "1"],
            vec!["--threads", "3"],
            vec!["--parallel", "--threads", "2"],
        ] {
            let mut args = vec!["all-pairs", file_s.as_str()];
            args.extend(extra.iter().copied());
            let (code, out) = run_args(&args);
            assert_eq!(code, 0, "{extra:?}: {out}");
            assert_eq!(out, serial, "{extra:?}");
        }

        let (code, _) = run_args(&["all-pairs", &file_s, "--threads", "0"]);
        assert_eq!(code, 2, "--threads 0 is a usage error");
        let (code, _) = run_args(&["all-pairs", &file_s, "--threads", "x"]);
        assert_eq!(code, 2);
        let (code, _) = run_args(&["all-pairs", &file_s, "--bogus"]);
        assert_eq!(code, 2);
        let (code, _) = run_args(&["all-pairs", "--parallel"]);
        assert_eq!(code, 2, "file is still required");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn serve_workload_masked_matches_rebuild() {
        let dir = std::env::temp_dir().join("wdm-cli-test-serve");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("sw.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "4",
            "--seed",
            "3",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0);

        // The masked hot path and the rebuild-per-request reference must
        // report byte-identical statistics (only the timing line may
        // differ).
        let strip_timing = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("elapsed") && !l.starts_with("mode"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let common = [
            "serve-workload",
            file_s.as_str(),
            "--requests",
            "60",
            "--load",
            "5",
            "--seed",
            "11",
        ];
        for policy in ["optimal", "lightpath", "first-fit"] {
            let mut masked = common.to_vec();
            masked.extend(["--policy", policy]);
            let mut rebuild = masked.clone();
            rebuild.extend(["--mode", "rebuild"]);
            let (code, out_m) = run_args(&masked);
            assert_eq!(code, 0, "{out_m}");
            assert!(out_m.contains("masked (persistent auxiliary graph)"));
            let (code, out_r) = run_args(&rebuild);
            assert_eq!(code, 0, "{out_r}");
            assert!(out_r.contains("rebuild-per-request"));
            assert_eq!(strip_timing(&out_m), strip_timing(&out_r), "{policy}");
        }

        // Fibre cut halfway through the trace, still mode-agnostic.
        let mut cut = common.to_vec();
        cut.extend(["--fail-link", "0"]);
        let (code, out_m) = run_args(&cut);
        assert_eq!(code, 0, "{out_m}");
        assert!(out_m.contains("fibre cut  : link 0 after request 30"));
        cut.extend(["--mode", "rebuild"]);
        let (code, out_r) = run_args(&cut);
        assert_eq!(code, 0, "{out_r}");
        assert_eq!(strip_timing(&out_m), strip_timing(&out_r));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn serve_workload_usage_errors() {
        let (code, _) = run_args(&["serve-workload"]);
        assert_eq!(code, 2, "file required");
        for bad in [
            vec!["serve-workload", "x.wdm", "--requests", "0"],
            vec!["serve-workload", "x.wdm", "--load", "-1"],
            vec!["serve-workload", "x.wdm", "--holding", "0"],
            vec!["serve-workload", "x.wdm", "--policy", "magic"],
            vec!["serve-workload", "x.wdm", "--mode", "psychic"],
            vec!["serve-workload", "x.wdm", "--fail-link", "x"],
            vec!["serve-workload", "x.wdm", "--bogus"],
        ] {
            let (code, _) = run_args(&bad);
            assert_eq!(code, 2, "{bad:?}");
        }
        let (code, out) = run_args(&["serve-workload", "/nonexistent.wdm"]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"));
    }

    #[test]
    fn serve_workload_rejects_out_of_range_fail_link() {
        let dir = std::env::temp_dir().join("wdm-cli-test-serve-range");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("r.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&["gen", "--topology", "ring:4", "--k", "2", "-o", &file_s]);
        assert_eq!(code, 0);
        let (code, out) = run_args(&["serve-workload", &file_s, "--fail-link", "999"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("out of range"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn info_on_missing_file() {
        let (code, out) = run_args(&["info", "/nonexistent.wdm"]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"));
    }

    /// Sum of every counter series named `name` (optionally restricted
    /// to one label pair) in a parsed metrics snapshot.
    fn counter_sum(snap: &wdm_obs::json::Value, name: &str, label: Option<(&str, &str)>) -> u64 {
        snap.get("counters")
            .and_then(|v| v.as_array())
            .expect("counters array")
            .iter()
            .filter(|c| c.get("name").and_then(|v| v.as_str()) == Some(name))
            .filter(|c| match label {
                None => true,
                Some((k, want)) => {
                    c.get("labels")
                        .and_then(|l| l.get(k))
                        .and_then(|v| v.as_str())
                        == Some(want)
                }
            })
            .map(|c| c.get("value").and_then(|v| v.as_u64()).expect("value"))
            .sum()
    }

    fn histogram_count(snap: &wdm_obs::json::Value, name: &str) -> u64 {
        snap.get("histograms")
            .and_then(|v| v.as_array())
            .expect("histograms array")
            .iter()
            .find(|h| h.get("name").and_then(|v| v.as_str()) == Some(name))
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("histogram {name} missing"))
    }

    #[test]
    fn serve_workload_metrics_snapshot_is_consistent() {
        let dir = std::env::temp_dir().join("wdm-cli-test-metrics");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("m.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let snap_path = dir.join("m.json");
        let snap_s = snap_path.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "4",
            "--seed",
            "3",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0);

        let (code, out) = run_args(&[
            "serve-workload",
            &file_s,
            "--requests",
            "60",
            "--load",
            "5",
            "--seed",
            "11",
            "--metrics-out",
            &snap_s,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("req latency: p50"), "{out}");
        assert!(
            out.contains(&format!("metrics    : wrote {snap_s}")),
            "{out}"
        );

        let text = std::fs::read_to_string(&snap_path).expect("snapshot written");
        let snap = wdm_obs::json::parse(&text).expect("snapshot parses");

        // offered == accepted + blocked, and the latency histogram saw
        // every request (no --fail-link, so no extra restoration calls).
        let offered = counter_sum(&snap, "wdm_rwa_requests_total", None);
        assert_eq!(offered, 60);
        let accepted = counter_sum(&snap, "wdm_rwa_accepted_total", None);
        let blocked = counter_sum(&snap, "wdm_rwa_blocked_total", None);
        assert_eq!(offered, accepted + blocked, "{text}");
        assert_eq!(
            blocked,
            counter_sum(&snap, "wdm_rwa_blocked_total", Some(("cause", "no_path")))
                + counter_sum(&snap, "wdm_rwa_blocked_total", Some(("cause", "capacity")))
        );
        assert_eq!(histogram_count(&snap, "wdm_rwa_provision_latency_ns"), 60);
        // The stdout report and the registry agree.
        assert!(out.contains(&format!("accepted   : {accepted}")), "{out}");
        assert!(out.contains(&format!("blocked    : {blocked}")), "{out}");
        // Search kernels ran and reported.
        assert!(counter_sum(&snap, "wdm_core_search_settled_total", None) > 0);
        assert!(counter_sum(&snap, "wdm_core_search_pushes_total", None) > 0);

        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn serve_workload_metrics_interval_appends_prometheus_dumps() {
        let dir = std::env::temp_dir().join("wdm-cli-test-metrics-prom");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("p.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let snap_path = dir.join("p.json");
        let snap_s = snap_path.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&["gen", "--topology", "ring:6", "--k", "3", "-o", &file_s]);
        assert_eq!(code, 0);

        let (code, out) = run_args(&[
            "serve-workload",
            &file_s,
            "--requests",
            "60",
            "--seed",
            "4",
            "--metrics-out",
            &snap_s,
            "--metrics-interval",
            "20",
        ]);
        assert_eq!(code, 0, "{out}");
        let prom_path = format!("{snap_s}.prom");
        assert!(
            out.contains(&format!("prom dumps : 3 appended to {prom_path}")),
            "{out}"
        );
        let prom = std::fs::read_to_string(&prom_path).expect("prom file written");
        assert_eq!(prom.matches("# dump ").count(), 3, "{prom}");
        assert!(prom.contains("# dump 1 after request 20"), "{prom}");
        assert!(prom.contains("# dump 3 after request 60"), "{prom}");
        assert!(
            prom.contains("# TYPE wdm_rwa_requests_total counter"),
            "{prom}"
        );
        assert!(prom.contains("wdm_rwa_requests_total 60"), "{prom}");
        assert!(
            prom.contains("wdm_rwa_provision_latency_ns_bucket"),
            "{prom}"
        );

        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(&prom_path).ok();
    }

    #[test]
    fn serve_workload_metrics_usage_errors() {
        for bad in [
            vec!["serve-workload", "x.wdm", "--metrics-interval", "10"],
            vec!["serve-workload", "x.wdm", "--metrics-out"],
            vec![
                "serve-workload",
                "x.wdm",
                "--metrics-out",
                "m.json",
                "--metrics-interval",
                "0",
            ],
            vec![
                "serve-workload",
                "x.wdm",
                "--metrics-out",
                "m.json",
                "--metrics-interval",
                "x",
            ],
        ] {
            let (code, _) = run_args(&bad);
            assert_eq!(code, 2, "{bad:?}");
        }
    }

    #[test]
    fn route_metrics_out_writes_snapshot() {
        let dir = std::env::temp_dir().join("wdm-cli-test-route-metrics");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("r.wdm");
        let file_s = file.to_str().expect("utf8").to_string();
        let snap_path = dir.join("r.json");
        let snap_s = snap_path.to_str().expect("utf8").to_string();
        let (code, _) = run_args(&[
            "gen",
            "--topology",
            "nsfnet",
            "--k",
            "4",
            "--seed",
            "7",
            "-o",
            &file_s,
        ]);
        assert_eq!(code, 0);

        let (code, out) = run_args(&["route", &file_s, "0", "13", "--metrics-out", &snap_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains(&format!("metrics: wrote {snap_s}")), "{out}");
        let text = std::fs::read_to_string(&snap_path).expect("snapshot written");
        let snap = wdm_obs::json::parse(&text).expect("snapshot parses");
        assert_eq!(histogram_count(&snap, "wdm_cli_route_latency_ns"), 1);
        assert!(counter_sum(&snap, "wdm_core_search_settled_total", None) > 0);
        let nodes = snap
            .get("gauges")
            .and_then(|v| v.as_array())
            .expect("gauges")
            .iter()
            .find(|g| g.get("name").and_then(|v| v.as_str()) == Some("wdm_core_search_graph_nodes"))
            .and_then(|g| g.get("value"))
            .and_then(|v| v.as_f64())
            .expect("search graph node gauge");
        assert!(nodes > 0.0, "{text}");

        let (code, _) = run_args(&["route", &file_s, "0", "13", "--metrics-out"]);
        assert_eq!(code, 2, "missing path is a usage error");

        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&snap_path).ok();
    }
}
