//! Implementation of the `wdm` command-line tool.
//!
//! The binary wraps the library for shell use over `.wdm` instance files
//! (the plain-text format of [`wdm_core::textfmt`]):
//!
//! ```text
//! wdm gen --topology nsfnet --k 8 --seed 1 -o nsf.wdm   # make an instance
//! wdm info nsf.wdm                                      # shape + parameters
//! wdm route nsf.wdm 0 13                                # optimal semilightpath
//! wdm route nsf.wdm 0 13 --alternates 3                 # k cheapest routes
//! wdm route nsf.wdm 0 13 --distributed                  # Theorem-3 protocol
//! wdm route nsf.wdm 0 13 --baseline                     # CFZ comparison
//! wdm all-pairs nsf.wdm                                 # Corollary-1 matrix
//! wdm serve-workload nsf.wdm --requests 500             # dynamic provisioning trace
//! wdm serve nsf.wdm --listen 127.0.0.1:4700             # control-plane daemon
//! wdm campaign --net nsfnet --seed 42 --place 2         # blocking sweep + placer
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); [`run`] is the testable entry point — it takes the raw
//! argument list and a writer, and returns the process exit code.
//!
//! # Structure
//!
//! Each subcommand lives in its own module under [`cmd`], implementing
//! the small object-safe [`Command`] trait (name / summary / usage /
//! run). The dispatcher below and the assembled usage text are derived
//! from the [`COMMANDS`] registry, so adding a subcommand is one module
//! plus one registry entry.

use std::fmt::Write as _;

pub mod cmd;
mod util;

/// One `wdm` subcommand: static metadata plus the runner.
///
/// `Sync` is a supertrait so implementations (stateless unit structs)
/// can sit behind `&'static dyn Command` references in [`COMMANDS`].
pub trait Command: Sync {
    /// The subcommand name as typed on the command line (`"route"`).
    fn name(&self) -> &'static str;
    /// A one-line description for command listings.
    fn summary(&self) -> &'static str;
    /// This command's indented block of the `USAGE` text (no trailing
    /// newline).
    fn usage(&self) -> &'static str;
    /// Runs the command on `args` (everything after the command name),
    /// writing human output to `out`. Returns the process exit code
    /// (0 success, 1 runtime failure, 2 usage error).
    fn run(&self, args: &[String], out: &mut String) -> i32;
}

/// Every `wdm` subcommand, in help order.
pub static COMMANDS: &[&dyn Command] = &[
    &cmd::gen::Gen,
    &cmd::info::Info,
    &cmd::route::Route,
    &cmd::all_pairs::AllPairs,
    &cmd::protect::Protect,
    &cmd::serve_workload::ServeWorkload,
    &cmd::serve::Serve,
    &cmd::campaign::Campaign,
    &cmd::trace_check::TraceCheck,
    &cmd::export::Export,
];

/// Runs the CLI with `args` (excluding the program name), writing output
/// to `out`. Returns the exit code (0 success, 2 usage error, 1 runtime
/// failure).
pub fn run(args: &[String], out: &mut String) -> i32 {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") | None => {
            // `wdm help <cmd>` prints just that command's usage block.
            if let Some(name) = args.get(1) {
                return match find(name) {
                    Some(c) => {
                        let _ = writeln!(out, "{}\n\nUSAGE:\n{}", c.summary(), c.usage());
                        0
                    }
                    None => {
                        let _ = writeln!(out, "unknown command `{name}`\n{}", full_usage());
                        2
                    }
                };
            }
            let _ = writeln!(out, "{}", full_usage());
            0
        }
        Some(name) => match find(name) {
            Some(c) => c.run(&args[1..], out),
            None => {
                let _ = writeln!(out, "unknown command `{name}`\n{}", full_usage());
                2
            }
        },
    }
}

/// Looks a subcommand up by its command-line name.
fn find(name: &str) -> Option<&'static dyn Command> {
    COMMANDS.iter().find(|c| c.name() == name).copied()
}

/// The complete `USAGE` text, assembled from every registered command's
/// usage block.
pub fn full_usage() -> String {
    let mut s =
        String::from("wdm — optimal lightpath/semilightpath routing (Liang & Shen)\n\nUSAGE:\n");
    for c in COMMANDS {
        s.push_str(c.usage());
        s.push('\n');
    }
    s.push_str("  wdm help [<command>]");
    s
}
