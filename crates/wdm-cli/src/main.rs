//! The `wdm` binary — see [`wdm_cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = wdm_cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
