//! End-to-end tests of the `wdm` command dispatcher — every
//! subcommand is driven through the public [`wdm_cli::run`] entry
//! point exactly as `main` does.

use wdm_cli::run;
use wdm_core::textfmt;

fn run_args(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = run(&args, &mut out);
    (code, out)
}

#[test]
fn help_and_unknown_command() {
    let (code, out) = run_args(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("USAGE"));
    let (code, out) = run_args(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(out.contains("unknown command"));
    let (code, _) = run_args(&[]);
    assert_eq!(code, 0);
}

#[test]
fn gen_to_stdout_parses_back() {
    let (code, out) = run_args(&["gen", "--topology", "abilene", "--k", "3"]);
    assert_eq!(code, 0, "{out}");
    let net = textfmt::from_text(&out).expect("generated instance parses");
    assert_eq!(net.node_count(), 11);
    assert_eq!(net.k(), 3);
}

#[test]
fn gen_parametric_topologies() {
    for (spec, nodes) in [("ring:8", 8), ("grid:2x3", 6), ("sparse:12", 12)] {
        let (code, out) = run_args(&["gen", "--topology", spec, "--k", "2"]);
        assert_eq!(code, 0, "{spec}: {out}");
        let net = textfmt::from_text(&out).expect("parses");
        assert_eq!(net.node_count(), nodes, "{spec}");
    }
}

#[test]
fn gen_rejects_bad_specs() {
    for bad in ["ring:2", "grid:0x3", "grid:3", "nope", "sparse:x"] {
        let (code, _) = run_args(&["gen", "--topology", bad, "--k", "2"]);
        assert_eq!(code, 2, "{bad} should be rejected");
    }
    let (code, _) = run_args(&["gen", "--k", "2"]);
    assert_eq!(code, 2);
    let (code, _) = run_args(&["gen", "--topology", "nsfnet"]);
    assert_eq!(code, 2);
}

#[test]
fn full_file_workflow() {
    let dir = std::env::temp_dir().join("wdm-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("test.wdm");
    let file_s = file.to_str().expect("utf8").to_string();

    let (code, out) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "7",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("wrote"));

    let (code, out) = run_args(&["info", &file_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("nodes     : 14"));
    assert!(out.contains("strongly connected: true"));

    let (code, out) = run_args(&[
        "route",
        &file_s,
        "0",
        "13",
        "--alternates",
        "3",
        "--baseline",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("optimal semilightpath") || out.contains("cannot reach"));
    if out.contains("optimal semilightpath") {
        assert!(out.contains("cfz baseline"));
    }

    let (code, out) = run_args(&["route", &file_s, "0", "5", "--distributed"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("distributed:"));

    let (code, out) = run_args(&["all-pairs", &file_s]);
    assert_eq!(code, 0, "{out}");
    // Diagonal is zero.
    assert!(out.contains('0'));
    std::fs::remove_file(&file).ok();
}

#[test]
fn route_usage_errors() {
    let (code, _) = run_args(&["route", "file.wdm"]);
    assert_eq!(code, 2);
    let (code, _) = run_args(&["route", "file.wdm", "a", "b"]);
    assert_eq!(code, 2);
    let (code, out) = run_args(&["route", "/nonexistent.wdm", "0", "1"]);
    assert_eq!(code, 1);
    assert!(out.contains("cannot read"));
}

#[test]
fn export_produces_dot() {
    let dir = std::env::temp_dir().join("wdm-cli-test-export");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("x.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&["gen", "--topology", "ring:5", "--k", "2", "-o", &file_s]);
    assert_eq!(code, 0);
    let (code, out) = run_args(&["export", &file_s]);
    assert_eq!(code, 0);
    assert!(out.starts_with("digraph"));
    assert!(out.contains("λ"));
    std::fs::remove_file(&file).ok();
}

#[test]
fn protect_runs_on_generated_instance() {
    let dir = std::env::temp_dir().join("wdm-cli-test-protect");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("p.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "6",
        "--seed",
        "2",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);
    let (code, out) = run_args(&["protect", &file_s, "0", "13"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("primary") || out.contains("no disjoint pair"));
    let (code, _) = run_args(&["protect", &file_s, "0", "13", "--physical"]);
    assert_eq!(code, 0);
    std::fs::remove_file(&file).ok();
}

#[test]
fn all_pairs_parallel_flags() {
    let dir = std::env::temp_dir().join("wdm-cli-test-parallel");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("ap.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "9",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);

    let (code, serial) = run_args(&["all-pairs", &file_s]);
    assert_eq!(code, 0, "{serial}");
    // Determinism contract: the printed matrix is byte-identical
    // however the computation is spread across threads.
    for extra in [
        vec!["--parallel"],
        vec!["--threads", "1"],
        vec!["--threads", "3"],
        vec!["--parallel", "--threads", "2"],
    ] {
        let mut args = vec!["all-pairs", file_s.as_str()];
        args.extend(extra.iter().copied());
        let (code, out) = run_args(&args);
        assert_eq!(code, 0, "{extra:?}: {out}");
        assert_eq!(out, serial, "{extra:?}");
    }

    let (code, _) = run_args(&["all-pairs", &file_s, "--threads", "0"]);
    assert_eq!(code, 2, "--threads 0 is a usage error");
    let (code, _) = run_args(&["all-pairs", &file_s, "--threads", "x"]);
    assert_eq!(code, 2);
    let (code, _) = run_args(&["all-pairs", &file_s, "--bogus"]);
    assert_eq!(code, 2);
    let (code, _) = run_args(&["all-pairs", "--parallel"]);
    assert_eq!(code, 2, "file is still required");
    std::fs::remove_file(&file).ok();
}

#[test]
fn serve_workload_masked_matches_rebuild() {
    let dir = std::env::temp_dir().join("wdm-cli-test-serve");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("sw.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "3",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);

    // The masked hot path and the rebuild-per-request reference must
    // report byte-identical statistics (only the timing line may
    // differ).
    let strip_timing = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.starts_with("elapsed") && !l.starts_with("mode"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let common = [
        "serve-workload",
        file_s.as_str(),
        "--requests",
        "60",
        "--load",
        "5",
        "--seed",
        "11",
    ];
    for policy in ["optimal", "lightpath", "first-fit"] {
        let mut masked = common.to_vec();
        masked.extend(["--policy", policy]);
        let mut rebuild = masked.clone();
        rebuild.extend(["--mode", "rebuild"]);
        let (code, out_m) = run_args(&masked);
        assert_eq!(code, 0, "{out_m}");
        assert!(out_m.contains("masked (persistent auxiliary graph)"));
        let (code, out_r) = run_args(&rebuild);
        assert_eq!(code, 0, "{out_r}");
        assert!(out_r.contains("rebuild-per-request"));
        assert_eq!(strip_timing(&out_m), strip_timing(&out_r), "{policy}");
    }

    // Fibre cut halfway through the trace, still mode-agnostic.
    let mut cut = common.to_vec();
    cut.extend(["--fail-link", "0"]);
    let (code, out_m) = run_args(&cut);
    assert_eq!(code, 0, "{out_m}");
    assert!(out_m.contains("fibre cut  : link 0 after request 30"));
    cut.extend(["--mode", "rebuild"]);
    let (code, out_r) = run_args(&cut);
    assert_eq!(code, 0, "{out_r}");
    assert_eq!(strip_timing(&out_m), strip_timing(&out_r));

    // Cut then heal: the restore is an exact involution, so both modes
    // still agree and the heal reports the cleared cut.
    let mut heal = common.to_vec();
    heal.extend(["--fail-link", "0", "--restore-after", "45"]);
    let (code, out_m) = run_args(&heal);
    assert_eq!(code, 0, "{out_m}");
    assert!(out_m.contains("fibre cut  : link 0 after request 30"));
    assert!(out_m.contains("fibre heal : link 0 after request 45 (cut cleared: true)"));
    heal.extend(["--mode", "rebuild"]);
    let (code, out_r) = run_args(&heal);
    assert_eq!(code, 0, "{out_r}");
    assert_eq!(strip_timing(&out_m), strip_timing(&out_r));
    std::fs::remove_file(&file).ok();
}

#[test]
fn serve_workload_usage_errors() {
    let (code, _) = run_args(&["serve-workload"]);
    assert_eq!(code, 2, "file required");
    for bad in [
        vec!["serve-workload", "x.wdm", "--requests", "0"],
        vec!["serve-workload", "x.wdm", "--load", "-1"],
        vec!["serve-workload", "x.wdm", "--holding", "0"],
        vec!["serve-workload", "x.wdm", "--policy", "magic"],
        vec!["serve-workload", "x.wdm", "--mode", "psychic"],
        vec!["serve-workload", "x.wdm", "--fail-link", "x"],
        vec!["serve-workload", "x.wdm", "--restore-after", "x"],
        // A heal without a cut can never fire.
        vec!["serve-workload", "x.wdm", "--restore-after", "45"],
        vec!["serve-workload", "x.wdm", "--bogus"],
    ] {
        let (code, _) = run_args(&bad);
        assert_eq!(code, 2, "{bad:?}");
    }
    let (code, out) = run_args(&["serve-workload", "/nonexistent.wdm"]);
    assert_eq!(code, 1);
    assert!(out.contains("cannot read"));
}

#[test]
fn serve_workload_rejects_out_of_range_fail_link() {
    let dir = std::env::temp_dir().join("wdm-cli-test-serve-range");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("r.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&["gen", "--topology", "ring:4", "--k", "2", "-o", &file_s]);
    assert_eq!(code, 0);
    // A link the instance doesn't have is a bad argument: usage error
    // (exit 2), like every other rejected flag value.
    let (code, out) = run_args(&["serve-workload", &file_s, "--fail-link", "999"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("out of range"));
    assert!(out.contains("USAGE"), "{out}");
    // A heal point at or before the midpoint cut (or past the trace)
    // could never clear the cut — rejected once the trace length is
    // known.
    for heal_at in ["10", "100", "999"] {
        let (code, out) = run_args(&[
            "serve-workload",
            &file_s,
            "--requests",
            "60",
            "--fail-link",
            "0",
            "--restore-after",
            heal_at,
        ]);
        assert_eq!(code, 2, "heal at {heal_at}: {out}");
        assert!(out.contains("must lie in"), "{out}");
    }
    std::fs::remove_file(&file).ok();
}

#[test]
fn info_on_missing_file() {
    let (code, out) = run_args(&["info", "/nonexistent.wdm"]);
    assert_eq!(code, 1);
    assert!(out.contains("cannot read"));
}

/// Sum of every counter series named `name` (optionally restricted
/// to one label pair) in a parsed metrics snapshot.
fn counter_sum(snap: &wdm_obs::json::Value, name: &str, label: Option<(&str, &str)>) -> u64 {
    snap.get("counters")
        .and_then(|v| v.as_array())
        .expect("counters array")
        .iter()
        .filter(|c| c.get("name").and_then(|v| v.as_str()) == Some(name))
        .filter(|c| match label {
            None => true,
            Some((k, want)) => {
                c.get("labels")
                    .and_then(|l| l.get(k))
                    .and_then(|v| v.as_str())
                    == Some(want)
            }
        })
        .map(|c| c.get("value").and_then(|v| v.as_u64()).expect("value"))
        .sum()
}

fn histogram_count(snap: &wdm_obs::json::Value, name: &str) -> u64 {
    snap.get("histograms")
        .and_then(|v| v.as_array())
        .expect("histograms array")
        .iter()
        .find(|h| h.get("name").and_then(|v| v.as_str()) == Some(name))
        .and_then(|h| h.get("count"))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("histogram {name} missing"))
}

#[test]
fn serve_workload_metrics_snapshot_is_consistent() {
    let dir = std::env::temp_dir().join("wdm-cli-test-metrics");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("m.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let snap_path = dir.join("m.json");
    let snap_s = snap_path.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "3",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);

    let (code, out) = run_args(&[
        "serve-workload",
        &file_s,
        "--requests",
        "60",
        "--load",
        "5",
        "--seed",
        "11",
        "--metrics-out",
        &snap_s,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("req latency: p50"), "{out}");
    assert!(
        out.contains(&format!("metrics    : wrote {snap_s}")),
        "{out}"
    );

    let text = std::fs::read_to_string(&snap_path).expect("snapshot written");
    let snap = wdm_obs::json::parse(&text).expect("snapshot parses");

    // offered == accepted + blocked, and the latency histogram saw
    // every request (no --fail-link, so no extra restoration calls).
    let offered = counter_sum(&snap, "wdm_rwa_requests_total", None);
    assert_eq!(offered, 60);
    let accepted = counter_sum(&snap, "wdm_rwa_accepted_total", None);
    let blocked = counter_sum(&snap, "wdm_rwa_blocked_total", None);
    assert_eq!(offered, accepted + blocked, "{text}");
    assert_eq!(
        blocked,
        counter_sum(&snap, "wdm_rwa_blocked_total", Some(("cause", "no_path")))
            + counter_sum(&snap, "wdm_rwa_blocked_total", Some(("cause", "capacity")))
    );
    assert_eq!(histogram_count(&snap, "wdm_rwa_provision_latency_ns"), 60);
    // The stdout report and the registry agree.
    assert!(out.contains(&format!("accepted   : {accepted}")), "{out}");
    assert!(out.contains(&format!("blocked    : {blocked}")), "{out}");
    // Search kernels ran and reported.
    assert!(counter_sum(&snap, "wdm_core_search_settled_total", None) > 0);
    assert!(counter_sum(&snap, "wdm_core_search_pushes_total", None) > 0);

    std::fs::remove_file(&file).ok();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn serve_workload_metrics_interval_publishes_prometheus_dumps() {
    let dir = std::env::temp_dir().join("wdm-cli-test-metrics-prom");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("p.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let snap_path = dir.join("p.json");
    let snap_s = snap_path.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&["gen", "--topology", "ring:6", "--k", "3", "-o", &file_s]);
    assert_eq!(code, 0);

    let (code, out) = run_args(&[
        "serve-workload",
        &file_s,
        "--requests",
        "60",
        "--seed",
        "4",
        "--metrics-out",
        &snap_s,
        "--metrics-interval",
        "20",
    ]);
    assert_eq!(code, 0, "{out}");
    let prom_path = format!("{snap_s}.prom");
    assert!(
        out.contains(&format!("prom dumps : 3 published to {prom_path}")),
        "{out}"
    );
    let prom = std::fs::read_to_string(&prom_path).expect("prom file written");
    assert_eq!(prom.matches("# dump ").count(), 3, "{prom}");
    assert!(prom.contains("# dump 1 after request 20"), "{prom}");
    assert!(prom.contains("# dump 3 after request 60"), "{prom}");
    assert!(
        prom.contains("# TYPE wdm_rwa_requests_total counter"),
        "{prom}"
    );
    assert!(prom.contains("wdm_rwa_requests_total 60"), "{prom}");
    assert!(
        prom.contains("wdm_rwa_provision_latency_ns_bucket"),
        "{prom}"
    );

    std::fs::remove_file(&file).ok();
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&prom_path).ok();
}

#[test]
fn serve_workload_metrics_usage_errors() {
    for bad in [
        vec!["serve-workload", "x.wdm", "--metrics-interval", "10"],
        vec!["serve-workload", "x.wdm", "--metrics-out"],
        vec![
            "serve-workload",
            "x.wdm",
            "--metrics-out",
            "m.json",
            "--metrics-interval",
            "0",
        ],
        vec![
            "serve-workload",
            "x.wdm",
            "--metrics-out",
            "m.json",
            "--metrics-interval",
            "x",
        ],
    ] {
        let (code, _) = run_args(&bad);
        assert_eq!(code, 2, "{bad:?}");
    }
}

#[test]
fn route_metrics_out_writes_snapshot() {
    let dir = std::env::temp_dir().join("wdm-cli-test-route-metrics");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("r.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let snap_path = dir.join("r.json");
    let snap_s = snap_path.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "7",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);

    let (code, out) = run_args(&["route", &file_s, "0", "13", "--metrics-out", &snap_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains(&format!("metrics: wrote {snap_s}")), "{out}");
    let text = std::fs::read_to_string(&snap_path).expect("snapshot written");
    let snap = wdm_obs::json::parse(&text).expect("snapshot parses");
    assert_eq!(histogram_count(&snap, "wdm_cli_route_latency_ns"), 1);
    assert!(counter_sum(&snap, "wdm_core_search_settled_total", None) > 0);
    let nodes = snap
        .get("gauges")
        .and_then(|v| v.as_array())
        .expect("gauges")
        .iter()
        .find(|g| g.get("name").and_then(|v| v.as_str()) == Some("wdm_core_search_graph_nodes"))
        .and_then(|g| g.get("value"))
        .and_then(|v| v.as_f64())
        .expect("search graph node gauge");
    assert!(nodes > 0.0, "{text}");

    let (code, _) = run_args(&["route", &file_s, "0", "13", "--metrics-out"]);
    assert_eq!(code, 2, "missing path is a usage error");

    std::fs::remove_file(&file).ok();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn trace_exports_round_trip_the_validator() {
    let dir = std::env::temp_dir().join("wdm-cli-test-trace-out");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("t.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&[
        "gen",
        "--topology",
        "nsfnet",
        "--k",
        "4",
        "--seed",
        "9",
        "-o",
        &file_s,
    ]);
    assert_eq!(code, 0);

    // serve-workload with all three trace knobs.
    let json_path = dir.join("w.trace.json");
    let json_s = json_path.to_str().expect("utf8").to_string();
    let text_path = dir.join("w.trace.txt");
    let text_s = text_path.to_str().expect("utf8").to_string();
    let (code, out) = run_args(&[
        "serve-workload",
        &file_s,
        "--requests",
        "60",
        "--seed",
        "3",
        "--trace-out",
        &json_s,
        "--trace-text",
        &text_s,
        "--trace-sample",
        "10",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(
        out.contains(&format!("trace json : wrote {json_s}")),
        "{out}"
    );
    assert!(
        out.contains(&format!("trace text : wrote {text_s}")),
        "{out}"
    );

    // The exported JSON round-trips the in-tree validator via trace-check.
    let (code, out) = run_args(&["trace-check", &json_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("events across"), "{out}");
    // The text tree is non-empty and mentions the root span label.
    let tree = std::fs::read_to_string(&text_path).expect("tree written");
    assert!(tree.contains("provision"), "{tree}");

    // route --trace-out produces a single-request trace.
    let route_path = dir.join("r.trace.json");
    let route_s = route_path.to_str().expect("utf8").to_string();
    let (code, out) = run_args(&["route", &file_s, "0", "13", "--trace-out", &route_s]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains(&format!("trace  : wrote {route_s}")), "{out}");
    let (code, out) = run_args(&["trace-check", &route_s]);
    assert_eq!(code, 0, "{out}");

    // Expecting an id that was never recorded fails loudly.
    let (code, out) = run_args(&["trace-check", &route_s, "--expect-trace-id", "999999"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("missing"), "{out}");

    // Garbage input is a runtime error, not a panic.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, b"{\"nope\":true}").expect("write");
    let (code, out) = run_args(&["trace-check", bogus.to_str().expect("utf8")]);
    assert_eq!(code, 1, "{out}");

    // --trace-sample without an export target is a usage error.
    let (code, _) = run_args(&["serve-workload", &file_s, "--trace-sample", "5"]);
    assert_eq!(code, 2);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_per_command_shows_usage() {
    let (code, out) = run_args(&["help", "serve"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("--listen"), "{out}");
    assert!(out.contains("drain"), "{out}");
    let (code, out) = run_args(&["help", "frobnicate"]);
    assert_eq!(code, 2);
    assert!(out.contains("unknown command"));
    // The top-level usage lists every registered command.
    let (_, out) = run_args(&["help"]);
    for name in [
        "gen",
        "info",
        "route",
        "all-pairs",
        "protect",
        "serve-workload",
        "serve",
        "trace-check",
        "export",
    ] {
        assert!(
            out.contains(&format!("wdm {name}")),
            "{name} missing:\n{out}"
        );
    }
}

#[test]
fn serve_usage_errors() {
    let dir = std::env::temp_dir().join("wdm-cli-test-serve-daemon");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("d.wdm");
    let file_s = file.to_str().expect("utf8").to_string();
    let (code, _) = run_args(&["gen", "--topology", "ring:4", "--k", "2", "-o", &file_s]);
    assert_eq!(code, 0);

    for bad in [
        vec!["serve"],
        vec!["serve", file_s.as_str()],
        vec!["serve", file_s.as_str(), "--listen"],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--policy",
            "magic",
        ],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--mode",
            "psychic",
        ],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--max-inflight",
            "0",
        ],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--max-conflicts",
            "0",
        ],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "x",
        ],
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--bogus",
        ],
        // The concurrent engine has no rebuild reference mode.
        vec![
            "serve",
            file_s.as_str(),
            "--listen",
            "127.0.0.1:0",
            "--sharded",
            "--mode",
            "rebuild",
        ],
    ] {
        let (code, out) = run_args(&bad);
        assert_eq!(code, 2, "{bad:?}: {out}");
        assert!(out.contains("USAGE"), "{bad:?}: {out}");
    }

    let (code, out) = run_args(&["serve", "/nonexistent.wdm", "--listen", "127.0.0.1:0"]);
    assert_eq!(code, 1);
    assert!(out.contains("cannot read"));
    std::fs::remove_file(&file).ok();
}

#[test]
fn campaign_small_sweep_is_thread_invariant() {
    let base = [
        "campaign",
        "--net",
        "nsfnet",
        "--seed",
        "42",
        "--loads",
        "30,45",
        "--densities",
        "0,0.5",
        "--requests",
        "60",
        "--replicas",
        "2",
        "--place",
        "1",
    ];
    let mut solo: Vec<&str> = base.to_vec();
    solo.extend(["--threads", "1"]);
    let mut wide: Vec<&str> = base.to_vec();
    wide.extend(["--threads", "4"]);
    let (code_a, out_a) = run_args(&solo);
    let (code_b, out_b) = run_args(&wide);
    assert_eq!(code_a, 0, "{out_a}");
    assert_eq!(code_b, 0, "{out_b}");
    // The report carries no wall-clock, so thread count must not change
    // a single byte of it.
    assert_eq!(out_a, out_b);
    assert!(out_a.contains("net        : NSFNET-14"));
    assert!(out_a.contains("\"experiment\": \"e18_blocking_campaign\""));
    assert!(out_a.contains("\"experiment\": \"e18_converter_placement\""));
    assert!(out_a.contains("placement  : budget 1"));
}

#[test]
fn campaign_usage_errors() {
    for bad in [
        vec!["campaign"],
        vec!["campaign", "--net", "fddi"],
        vec!["campaign", "--net", "nsfnet", "--k", "0"],
        vec!["campaign", "--net", "nsfnet", "--loads", "0,-3"],
        vec!["campaign", "--net", "nsfnet", "--densities", "1.5"],
        vec!["campaign", "--net", "nsfnet", "--requests", "0"],
        vec!["campaign", "--net", "nsfnet", "--threads", "0"],
        vec!["campaign", "--net", "nsfnet", "--policy", "psychic"],
        vec!["campaign", "--net", "nsfnet", "--place", "0"],
        vec!["campaign", "--net", "nsfnet", "--frob"],
    ] {
        let (code, out) = run_args(&bad);
        assert_eq!(code, 2, "{bad:?}: {out}");
        assert!(out.contains("USAGE"), "{bad:?}: {out}");
    }
}
