//! Directed-graph substrate for WDM lightpath routing.
//!
//! The paper models an optical wide-area network as a directed graph
//! `G = (V, E)` with `n` nodes and `m` links (an undirected fibre is two
//! opposite directed links). Its analysis leans on WANs being *sparse*
//! (`m = O(n)`) with bounded maximum degree `d`, so this crate provides:
//!
//! * [`DiGraph`] — a compact adjacency-list directed multigraph with stable
//!   [`NodeId`]/[`LinkId`] handles;
//! * [`topology`] — generators for the network classes the paper reasons
//!   about (rings, grids/tori, bounded-degree sparse random WANs, Waxman and
//!   random-geometric graphs) plus real reference WAN topologies (NSFNET,
//!   ARPANET, EON, Abilene, GÉANT);
//! * [`metrics`] — degree statistics, reachability/connectivity checks and
//!   BFS utilities used by tests and experiment harnesses.
//!
//! # Examples
//!
//! ```
//! use wdm_graph::{DiGraph, topology};
//!
//! // The 14-node NSFNET backbone, as two directed links per fibre.
//! let g = topology::nsfnet();
//! assert_eq!(g.node_count(), 14);
//! assert!(wdm_graph::metrics::is_strongly_connected(&g));
//!
//! // Hand-built triangle.
//! let mut g = DiGraph::new(3);
//! let ab = g.add_link(0, 1);
//! g.add_link(1, 2);
//! g.add_link(2, 0);
//! assert_eq!(g.link(ab).source().index(), 0);
//! assert_eq!(g.max_degree(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
mod error;
mod graph;
pub mod metrics;
pub mod topology;

pub use error::GraphError;
pub use graph::{DiGraph, Link, LinkId, NodeId};
