//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating graphs and topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A generator was asked for fewer nodes than it supports.
    TooFewNodes {
        /// Requested node count.
        requested: usize,
        /// Minimum node count the generator supports.
        minimum: usize,
    },
    /// A generator was asked for an infeasible link budget.
    InfeasibleLinkCount {
        /// Requested number of directed links.
        requested: usize,
        /// Maximum the generator can produce under its constraints.
        maximum: usize,
    },
    /// A degree bound too small to connect the requested graph.
    DegreeBoundTooSmall {
        /// Requested maximum degree.
        bound: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooFewNodes { requested, minimum } => {
                write!(
                    f,
                    "generator needs at least {minimum} nodes, got {requested}"
                )
            }
            GraphError::InfeasibleLinkCount { requested, maximum } => {
                write!(
                    f,
                    "requested {requested} links but at most {maximum} are possible"
                )
            }
            GraphError::DegreeBoundTooSmall { bound } => {
                write!(
                    f,
                    "degree bound {bound} is too small to keep the graph connected"
                )
            }
            GraphError::InvalidParameter { name, constraint } => {
                write!(f, "parameter `{name}` violates constraint: {constraint}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::TooFewNodes {
            requested: 1,
            minimum: 3,
        };
        assert_eq!(e.to_string(), "generator needs at least 3 nodes, got 1");
        let e = GraphError::InfeasibleLinkCount {
            requested: 100,
            maximum: 12,
        };
        assert!(e.to_string().contains("at most 12"));
        let e = GraphError::DegreeBoundTooSmall { bound: 1 };
        assert!(e.to_string().contains("degree bound 1"));
        let e = GraphError::InvalidParameter {
            name: "alpha",
            constraint: "must be in (0, 1]",
        };
        assert!(e.to_string().contains("alpha"));
    }
}
