//! Fixed reference WAN topologies.
//!
//! These are the backbone networks that the WDM routing literature of the
//! paper's era evaluates on. Node counts, link counts, and degree profiles
//! match the commonly used versions; where the literature has minor variants
//! we pick one and state its statistics in the constructor docs. Each fibre
//! is encoded as a pair of oppositely directed links, per the paper's
//! convention.

use crate::DiGraph;

/// A named reference topology, for sweeps over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferenceTopology {
    /// 14-node NSFNET T1 backbone.
    Nsfnet,
    /// 20-node ARPANET.
    Arpanet,
    /// 19-node European Optical Network.
    Eon,
    /// 11-node Abilene (Internet2).
    Abilene,
    /// 22-node GÉANT core.
    Geant,
}

impl ReferenceTopology {
    /// All reference topologies, for experiment sweeps.
    pub const ALL: [ReferenceTopology; 5] = [
        ReferenceTopology::Nsfnet,
        ReferenceTopology::Arpanet,
        ReferenceTopology::Eon,
        ReferenceTopology::Abilene,
        ReferenceTopology::Geant,
    ];

    /// Builds the topology graph.
    pub fn build(self) -> DiGraph {
        match self {
            ReferenceTopology::Nsfnet => nsfnet(),
            ReferenceTopology::Arpanet => arpanet(),
            ReferenceTopology::Eon => eon(),
            ReferenceTopology::Abilene => abilene(),
            ReferenceTopology::Geant => geant(),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReferenceTopology::Nsfnet => "NSFNET-14",
            ReferenceTopology::Arpanet => "ARPANET-20",
            ReferenceTopology::Eon => "EON-19",
            ReferenceTopology::Abilene => "Abilene-11",
            ReferenceTopology::Geant => "GEANT-22",
        }
    }
}

impl std::fmt::Display for ReferenceTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 14-node, 21-fibre NSFNET T1 backbone (42 directed links, `d = 4`).
///
/// Node order: WA, CA1, CA2, UT, CO, TX, NE, IL, PA, GA, MI, NY, NJ, DC.
///
/// # Examples
///
/// ```
/// let g = wdm_graph::topology::nsfnet();
/// assert_eq!((g.node_count(), g.link_count()), (14, 42));
/// ```
pub fn nsfnet() -> DiGraph {
    DiGraph::from_undirected_edges(
        14,
        [
            (0, 1),   // WA  - CA1
            (0, 2),   // WA  - CA2
            (0, 7),   // WA  - IL
            (1, 2),   // CA1 - CA2
            (1, 3),   // CA1 - UT
            (2, 5),   // CA2 - TX
            (3, 4),   // UT  - CO
            (3, 10),  // UT  - MI
            (4, 5),   // CO  - TX
            (4, 6),   // CO  - NE
            (5, 9),   // TX  - GA
            (5, 12),  // TX  - NJ
            (6, 7),   // NE  - IL
            (7, 8),   // IL  - PA
            (8, 9),   // PA  - GA
            (8, 11),  // PA  - NY
            (9, 13),  // GA  - DC
            (10, 11), // MI  - NY
            (10, 13), // MI  - DC
            (11, 12), // NY  - NJ
            (12, 13), // NJ  - DC
        ],
    )
}

/// A 20-node, 31-fibre ARPANET topology (62 directed links, `d = 4`).
pub fn arpanet() -> DiGraph {
    DiGraph::from_undirected_edges(
        20,
        [
            (0, 1),
            (0, 2),
            (0, 19),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 5),
            (3, 6),
            (4, 5),
            (4, 7),
            (5, 8),
            (6, 9),
            (6, 10),
            (7, 8),
            (7, 11),
            (8, 12),
            (9, 10),
            (9, 13),
            (10, 14),
            (11, 12),
            (11, 15),
            (12, 16),
            (13, 14),
            (13, 17),
            (14, 18),
            (15, 16),
            (15, 19),
            (16, 17),
            (17, 18),
            (18, 19),
            (2, 6),
        ],
    )
}

/// A 19-node, 37-fibre European Optical Network (EON) topology
/// (74 directed links, `d = 7` at the London/Paris hubs).
pub fn eon() -> DiGraph {
    DiGraph::from_undirected_edges(
        19,
        [
            (0, 1),   // London    - Amsterdam
            (0, 2),   // London    - Paris
            (0, 3),   // London    - Brussels
            (0, 18),  // London    - Dublin
            (1, 3),   // Amsterdam - Brussels
            (1, 4),   // Amsterdam - Berlin
            (1, 5),   // Amsterdam - Copenhagen
            (2, 3),   // Paris     - Brussels
            (2, 6),   // Paris     - Zurich
            (2, 7),   // Paris     - Madrid
            (2, 8),   // Paris     - Milan
            (3, 9),   // Brussels  - Luxembourg
            (4, 5),   // Berlin    - Copenhagen
            (4, 10),  // Berlin    - Prague
            (4, 11),  // Berlin    - Vienna
            (5, 12),  // Copenhagen- Stockholm
            (6, 8),   // Zurich    - Milan
            (6, 9),   // Zurich    - Luxembourg
            (6, 11),  // Zurich    - Vienna
            (7, 8),   // Madrid    - Milan (via Marseille trunk)
            (7, 13),  // Madrid    - Lisbon
            (8, 14),  // Milan     - Rome
            (9, 2),   // Luxembourg- Paris
            (10, 11), // Prague    - Vienna
            (10, 15), // Prague    - Warsaw
            (11, 16), // Vienna    - Budapest
            (12, 15), // Stockholm - Warsaw
            (12, 17), // Stockholm - Oslo
            (13, 0),  // Lisbon    - London
            (14, 16), // Rome      - Budapest
            (14, 6),  // Rome      - Zurich
            (15, 16), // Warsaw    - Budapest
            (17, 5),  // Oslo      - Copenhagen
            (18, 2),  // Dublin    - Paris
            (3, 6),   // Brussels  - Zurich
            (8, 11),  // Milan     - Vienna
            (0, 5),   // London    - Copenhagen
        ],
    )
}

/// The 11-node, 14-fibre Abilene (Internet2) backbone
/// (28 directed links, `d = 3`).
///
/// Node order: Seattle, Sunnyvale, LA, Denver, Kansas City, Houston,
/// Indianapolis, Chicago, Atlanta, New York, Washington DC.
pub fn abilene() -> DiGraph {
    DiGraph::from_undirected_edges(
        11,
        [
            (0, 1),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (4, 6),
            (5, 8),
            (6, 7),
            (6, 8),
            (7, 9),
            (8, 10),
            (9, 10),
        ],
    )
}

/// A 22-node, 36-fibre GÉANT core topology (72 directed links).
pub fn geant() -> DiGraph {
    DiGraph::from_undirected_edges(
        22,
        [
            (0, 1),
            (0, 2),
            (0, 21),
            (1, 2),
            (1, 3),
            (1, 6),
            (2, 4),
            (2, 7),
            (3, 5),
            (3, 6),
            (4, 7),
            (4, 8),
            (5, 9),
            (5, 10),
            (6, 10),
            (6, 11),
            (7, 12),
            (8, 12),
            (8, 13),
            (9, 10),
            (9, 14),
            (10, 15),
            (11, 15),
            (11, 16),
            (12, 17),
            (13, 17),
            (13, 18),
            (14, 15),
            (14, 19),
            (15, 20),
            (16, 20),
            (17, 21),
            (18, 19),
            (18, 21),
            (19, 20),
            (20, 21),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{is_strongly_connected, DegreeStats};

    #[test]
    fn all_reference_topologies_are_strongly_connected() {
        for t in ReferenceTopology::ALL {
            let g = t.build();
            assert!(is_strongly_connected(&g), "{t} must be strongly connected");
        }
    }

    #[test]
    fn stated_sizes_match() {
        let cases = [
            (ReferenceTopology::Nsfnet, 14, 42),
            (ReferenceTopology::Arpanet, 20, 62),
            (ReferenceTopology::Eon, 19, 74),
            (ReferenceTopology::Abilene, 11, 28),
            (ReferenceTopology::Geant, 22, 72),
        ];
        for (t, n, m) in cases {
            let g = t.build();
            assert_eq!((g.node_count(), g.link_count()), (n, m), "{t}");
        }
    }

    #[test]
    fn reference_wans_are_sparse_with_small_degree() {
        // The paper's regime: m = O(n) and d ≪ n.
        for t in ReferenceTopology::ALL {
            let s = DegreeStats::of(&t.build());
            assert!(s.m <= 4 * s.n, "{t} is sparse");
            assert!(s.max_degree <= 7, "{t} has bounded degree");
            assert!(s.max_degree >= 2);
        }
    }

    #[test]
    fn in_and_out_degrees_are_symmetric() {
        // Undirected construction ⟹ d_in(v) = d_out(v) for every node.
        for t in ReferenceTopology::ALL {
            let g = t.build();
            for v in g.nodes() {
                assert_eq!(g.in_degree(v), g.out_degree(v), "{t} node {v}");
            }
        }
    }

    #[test]
    fn names_are_unique_and_display() {
        let names: std::collections::HashSet<_> =
            ReferenceTopology::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), ReferenceTopology::ALL.len());
        assert_eq!(ReferenceTopology::Nsfnet.to_string(), "NSFNET-14");
    }

    #[test]
    fn no_self_loops_or_duplicate_fibres() {
        for t in ReferenceTopology::ALL {
            let g = t.build();
            let mut seen = std::collections::HashSet::new();
            for (_, l) in g.links() {
                assert_ne!(l.source(), l.target(), "{t} has a self-loop");
                assert!(
                    seen.insert((l.source(), l.target())),
                    "{t} has duplicate link {l}"
                );
            }
        }
    }
}
