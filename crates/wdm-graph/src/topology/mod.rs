//! WAN topology generators and reference networks.
//!
//! The paper's comparison (Section III-C) hinges on large wide-area networks
//! being sparse — `m = O(n)`, bounded or slowly-growing maximum degree `d`,
//! planar or near-planar. The generators here produce exactly those families,
//! and the [`mod@self`] re-exports ([`nsfnet`], [`arpanet`], [`eon`], [`abilene`],
//! [`geant`]) provide the fixed real-world backbone topologies that
//! WDM papers traditionally evaluate on.
//!
//! All generators emit *directed* graphs following the paper's convention:
//! an undirected fibre becomes two oppositely-directed links.

mod generate;
mod reference;

pub use generate::{
    grid, line, random_geometric, random_sparse, ring, torus, waxman, WaxmanParams,
};
pub use reference::{abilene, arpanet, eon, geant, nsfnet, ReferenceTopology};
