//! Parametric topology generators for the paper's sparse-WAN regime.

use crate::{DiGraph, GraphError};
use rand::seq::SliceRandom;
use rand::Rng;

/// A bidirectional path `0 — 1 — … — n-1` (`2(n-1)` directed links).
///
/// # Examples
///
/// ```
/// let g = wdm_graph::topology::line(4);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.link_count(), 6);
/// ```
pub fn line(n: usize) -> DiGraph {
    DiGraph::from_undirected_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// A ring over `n` nodes.
///
/// With `bidirectional = true` every fibre carries both directions
/// (`2n` directed links, `d = 2`); otherwise a unidirectional ring
/// (`n` links, `d = 1`). Rings are the classic SONET/WDM metro topology and
/// the sparsest strongly-connected graph.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, bidirectional: bool) -> DiGraph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let edges = (0..n).map(|i| (i, (i + 1) % n));
    if bidirectional {
        DiGraph::from_undirected_edges(n, edges)
    } else {
        DiGraph::from_links(n, edges)
    }
}

/// A `rows × cols` bidirectional mesh (grid) — planar, `d ≤ 4`.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid(rows: usize, cols: usize) -> DiGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    DiGraph::from_undirected_edges(rows * cols, edges)
}

/// A `rows × cols` bidirectional torus (grid with wraparound), `d = 4`.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (smaller tori create parallel fibres).
pub fn torus(rows: usize, cols: usize) -> DiGraph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    DiGraph::from_undirected_edges(rows * cols, edges)
}

/// A random strongly-connected sparse WAN with `m = 2(n + extra_chords)`
/// directed links and total degree (in+out of the underlying undirected
/// graph) at most `2·max_degree` per node.
///
/// Construction: a random Hamiltonian cycle (guaranteeing strong
/// connectivity) plus `extra_chords` random chords that respect the degree
/// bound — this is the `m = O(n)`, `d = O(1)` family the paper's analysis
/// targets.
///
/// # Errors
///
/// * [`GraphError::TooFewNodes`] if `n < 3`;
/// * [`GraphError::DegreeBoundTooSmall`] if `max_degree < 2` (the cycle
///   alone needs undirected degree 2);
/// * [`GraphError::InfeasibleLinkCount`] if the chords cannot be placed
///   under the degree bound.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let g = wdm_graph::topology::random_sparse(50, 25, 4, &mut rng)?;
/// assert_eq!(g.node_count(), 50);
/// assert_eq!(g.link_count(), 2 * (50 + 25));
/// assert!(wdm_graph::metrics::is_strongly_connected(&g));
/// # Ok::<(), wdm_graph::GraphError>(())
/// ```
pub fn random_sparse<R: Rng + ?Sized>(
    n: usize,
    extra_chords: usize,
    max_degree: usize,
    rng: &mut R,
) -> Result<DiGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::TooFewNodes {
            requested: n,
            minimum: 3,
        });
    }
    if max_degree < 2 {
        return Err(GraphError::DegreeBoundTooSmall { bound: max_degree });
    }
    // Degree budget left after the Hamiltonian cycle uses 2 at every node.
    let spare: usize = n * (max_degree - 2);
    let max_chords = (spare / 2).min(n * (n - 1) / 2 - n);
    if extra_chords > max_chords {
        return Err(GraphError::InfeasibleLinkCount {
            requested: 2 * (n + extra_chords),
            maximum: 2 * (n + max_chords),
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut undirected_degree = vec![2usize; n];
    let mut present = std::collections::HashSet::with_capacity(n + extra_chords);
    let mut edges = Vec::with_capacity(n + extra_chords);
    for i in 0..n {
        let (u, v) = (order[i], order[(i + 1) % n]);
        present.insert((u.min(v), u.max(v)));
        edges.push((u, v));
    }

    let mut placed = 0;
    let mut attempts = 0usize;
    // Rejection sampling with a deterministic fallback sweep when the
    // remaining feasible chords are rare.
    let attempt_budget = 50 * (extra_chords + 1);
    while placed < extra_chords && attempts < attempt_budget {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.contains(&key)
            || undirected_degree[u] >= max_degree
            || undirected_degree[v] >= max_degree
        {
            continue;
        }
        present.insert(key);
        undirected_degree[u] += 1;
        undirected_degree[v] += 1;
        edges.push((u, v));
        placed += 1;
    }
    if placed < extra_chords {
        // Deterministic sweep over all pairs in random order.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !present.contains(&(u, v)) {
                    candidates.push((u, v));
                }
            }
        }
        candidates.shuffle(rng);
        for (u, v) in candidates {
            if placed == extra_chords {
                break;
            }
            if undirected_degree[u] < max_degree && undirected_degree[v] < max_degree {
                present.insert((u, v));
                undirected_degree[u] += 1;
                undirected_degree[v] += 1;
                edges.push((u, v));
                placed += 1;
            }
        }
    }
    if placed < extra_chords {
        return Err(GraphError::InfeasibleLinkCount {
            requested: 2 * (n + extra_chords),
            maximum: 2 * (n + placed),
        });
    }
    Ok(DiGraph::from_undirected_edges(n, edges))
}

/// Parameters of the Waxman random-WAN model.
///
/// Nodes are placed uniformly in the unit square; an undirected fibre
/// `(u, v)` exists with probability `alpha · exp(-dist(u, v) / (beta · √2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanParams {
    /// Overall link density, in `(0, 1]`.
    pub alpha: f64,
    /// Distance decay, in `(0, 1]`; larger values favour long links.
    pub beta: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            alpha: 0.4,
            beta: 0.2,
        }
    }
}

/// A Waxman random WAN over `n` nodes, made strongly connected.
///
/// The classic Waxman graph may be disconnected; as is standard practice in
/// WDM simulation, components are afterwards stitched together with the
/// shortest inter-component fibres, so the result is always strongly
/// connected (each fibre is a directed link pair).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `alpha` or `beta` is outside
/// `(0, 1]`, [`GraphError::TooFewNodes`] if `n < 2`.
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    params: WaxmanParams,
    rng: &mut R,
) -> Result<DiGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::TooFewNodes {
            requested: n,
            minimum: 2,
        });
    }
    if !(params.alpha > 0.0 && params.alpha <= 1.0) {
        return Err(GraphError::InvalidParameter {
            name: "alpha",
            constraint: "must be in (0, 1]",
        });
    }
    if !(params.beta > 0.0 && params.beta <= 1.0) {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            constraint: "must be in (0, 1]",
        });
    }
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let scale = params.beta * std::f64::consts::SQRT_2;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let d = dist(points[u], points[v]);
            if rng.gen::<f64>() < params.alpha * (-d / scale).exp() {
                edges.push((u, v));
            }
        }
    }
    connect_components(n, &mut edges, &points);
    Ok(DiGraph::from_undirected_edges(n, edges))
}

/// A random geometric WAN: nodes uniform in the unit square, fibres between
/// all pairs closer than `radius`, stitched to strong connectivity like
/// [`waxman`].
///
/// # Errors
///
/// [`GraphError::TooFewNodes`] if `n < 2`; [`GraphError::InvalidParameter`]
/// if `radius` is not positive.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<DiGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::TooFewNodes {
            requested: n,
            minimum: 2,
        });
    }
    if radius <= 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "radius",
            constraint: "must be positive",
        });
    }
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if dist(points[u], points[v]) <= radius {
                edges.push((u, v));
            }
        }
    }
    connect_components(n, &mut edges, &points);
    Ok(DiGraph::from_undirected_edges(n, edges))
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Stitches undirected components together using the geometrically shortest
/// inter-component edge until one component remains.
fn connect_components(n: usize, edges: &mut Vec<(usize, usize)>, points: &[(f64, f64)]) {
    let mut dsu: Vec<usize> = (0..n).collect();
    fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
        if dsu[x] != x {
            let root = find(dsu, dsu[x]);
            dsu[x] = root;
        }
        dsu[x]
    }
    for &(u, v) in edges.iter() {
        let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
        if ru != rv {
            dsu[ru] = rv;
        }
    }
    loop {
        // Find the shortest edge between two different components.
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            for v in (u + 1)..n {
                if find(&mut dsu, u) != find(&mut dsu, v) {
                    let d = dist(points[u], points[v]);
                    if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                        best = Some((d, u, v));
                    }
                }
            }
        }
        match best {
            Some((_, u, v)) => {
                edges.push((u, v));
                let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
                dsu[ru] = rv;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_strongly_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.link_count(), 8);
        assert!(!is_strongly_connected(&DiGraph::from_links(
            5,
            (1..5).map(|i| (i - 1, i))
        )));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn unidirectional_ring() {
        let g = ring(6, false);
        assert_eq!(g.link_count(), 6);
        assert_eq!(g.max_degree(), 1);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn bidirectional_ring() {
        let g = ring(6, true);
        assert_eq!(g.link_count(), 12);
        assert_eq!(g.max_degree(), 2);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        ring(2, true);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3*3 horizontal + 2*4 vertical undirected edges = 17 → 34 directed.
        assert_eq!(g.link_count(), 34);
        assert_eq!(g.max_degree(), 4);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 3);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.link_count(), 36);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
            assert_eq!(g.in_degree(v), 4);
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn random_sparse_respects_budget_and_connectivity() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [10, 40, 100] {
            let g = random_sparse(n, n / 2, 4, &mut rng).expect("feasible");
            assert_eq!(g.node_count(), n);
            assert_eq!(g.link_count(), 2 * (n + n / 2));
            assert!(g.max_degree() <= 4);
            assert!(is_strongly_connected(&g));
        }
    }

    #[test]
    fn random_sparse_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            random_sparse(2, 0, 4, &mut rng),
            Err(GraphError::TooFewNodes { .. })
        ));
        assert!(matches!(
            random_sparse(10, 0, 1, &mut rng),
            Err(GraphError::DegreeBoundTooSmall { .. })
        ));
        assert!(matches!(
            random_sparse(10, 1000, 3, &mut rng),
            Err(GraphError::InfeasibleLinkCount { .. })
        ));
    }

    #[test]
    fn random_sparse_exact_degree_bound_fills() {
        // max_degree 3 on 10 nodes leaves 10 spare half-slots → 5 chords.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_sparse(10, 5, 3, &mut rng).expect("exactly feasible");
        assert_eq!(g.link_count(), 30);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn waxman_is_connected_and_validates() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = waxman(30, WaxmanParams::default(), &mut rng).expect("valid");
        assert_eq!(g.node_count(), 30);
        assert!(is_strongly_connected(&g));
        assert!(matches!(
            waxman(
                30,
                WaxmanParams {
                    alpha: 0.0,
                    beta: 0.2
                },
                &mut rng
            ),
            Err(GraphError::InvalidParameter { name: "alpha", .. })
        ));
        assert!(matches!(
            waxman(
                30,
                WaxmanParams {
                    alpha: 0.4,
                    beta: 1.5
                },
                &mut rng
            ),
            Err(GraphError::InvalidParameter { name: "beta", .. })
        ));
        assert!(matches!(
            waxman(1, WaxmanParams::default(), &mut rng),
            Err(GraphError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn geometric_is_connected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = random_geometric(25, 0.2, &mut rng).expect("valid");
        assert!(is_strongly_connected(&g));
        assert!(matches!(
            random_geometric(25, 0.0, &mut rng),
            Err(GraphError::InvalidParameter { .. })
        ));
    }
}
