//! Compact adjacency-list directed multigraph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`DiGraph`].
///
/// Node ids are dense: a graph with `n` nodes has ids `0..n`.
///
/// # Examples
///
/// ```
/// use wdm_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit into `u32`.
    pub fn new(index: usize) -> Self {
        let Ok(raw) = u32::try_from(index) else {
            unreachable!("node index {index} does not fit in u32")
        };
        NodeId(raw)
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a directed link in a [`DiGraph`].
///
/// Link ids are dense in insertion order: a graph with `m` links has ids
/// `0..m`.
///
/// # Examples
///
/// ```
/// use wdm_graph::DiGraph;
/// let mut g = DiGraph::new(2);
/// let e = g.add_link(0, 1);
/// assert_eq!(e.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit into `u32`.
    pub fn new(index: usize) -> Self {
        let Ok(raw) = u32::try_from(index) else {
            unreachable!("link index {index} does not fit in u32")
        };
        LinkId(raw)
    }

    /// The dense index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for LinkId {
    fn from(index: usize) -> Self {
        LinkId::new(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed link `⟨tail, head⟩`.
///
/// Following the paper's notation, `tail(e)` is where the link leaves and
/// `head(e)` where it enters: a link `e = ⟨u, v⟩` has `tail(e) = u` and
/// `head(e) = v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    source: NodeId,
    target: NodeId,
}

impl Link {
    /// The tail (origin) of the link.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The head (destination) of the link.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The paper's `tail(e)` — alias for [`Link::source`].
    pub fn tail(&self) -> NodeId {
        self.source
    }

    /// The paper's `head(e)` — alias for [`Link::target`].
    pub fn head(&self) -> NodeId {
        self.target
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.source, self.target)
    }
}

/// A directed multigraph stored as adjacency lists.
///
/// Nodes are created up front ([`DiGraph::new`]) or appended
/// ([`DiGraph::add_node`]); links are appended with [`DiGraph::add_link`].
/// Parallel links and self-loops are allowed (the WDM model later excludes
/// self-loops at the network level, not here).
///
/// # Examples
///
/// ```
/// use wdm_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_link(0, 1);
/// g.add_link(0, 2);
/// g.add_link(2, 0);
/// assert_eq!(g.out_degree(0.into()), 2);
/// assert_eq!(g.in_degree(0.into()), 1);
/// assert_eq!(g.max_out_degree(), 2);
/// assert_eq!(g.max_degree(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct DiGraph {
    links: Vec<Link>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no links.
    pub fn new(n: usize) -> Self {
        DiGraph {
            links: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` nodes from an iterator of `(tail, head)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wdm_graph::DiGraph;
    /// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
    /// assert_eq!(g.link_count(), 2);
    /// ```
    pub fn from_links<I>(n: usize, links: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v) in links {
            g.add_link(u, v);
        }
        g
    }

    /// Creates a graph with `n` nodes where every undirected edge `(u, v)`
    /// becomes the two directed links `⟨u, v⟩` and `⟨v, u⟩` — the paper's
    /// convention for modelling undirected fibre.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_undirected_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_link(u, v);
            g.add_link(v, u);
        }
        g
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed links `m`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        NodeId::new(self.out_adj.len() - 1)
    }

    /// Appends the directed link `⟨source, target⟩` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_link(&mut self, source: impl Into<NodeId>, target: impl Into<NodeId>) -> LinkId {
        let (source, target) = (source.into(), target.into());
        assert!(
            source.index() < self.node_count(),
            "source {source} out of range"
        );
        assert!(
            target.index() < self.node_count(),
            "target {target} out of range"
        );
        let id = LinkId::new(self.links.len());
        self.links.push(Link { source, target });
        self.out_adj[source.index()].push(id);
        self.in_adj[target.index()].push(id);
        id
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over `(LinkId, Link)` in insertion order.
    pub fn links(&self) -> impl ExactSizeIterator<Item = (LinkId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId::new(i), l))
    }

    /// The ids of links leaving `v` — the paper's `E_out(G, v)`.
    pub fn out_links(&self, v: NodeId) -> &[LinkId] {
        &self.out_adj[v.index()]
    }

    /// The ids of links entering `v` — the paper's `E_in(G, v)`.
    pub fn in_links(&self, v: NodeId) -> &[LinkId] {
        &self.in_adj[v.index()]
    }

    /// Out-degree `d_out(G, v)`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree `d_in(G, v)`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Maximum out-degree `d_out` over all nodes (0 for an empty graph).
    pub fn max_out_degree(&self) -> usize {
        self.out_adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Maximum in-degree `d_in` over all nodes (0 for an empty graph).
    pub fn max_in_degree(&self) -> usize {
        self.in_adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The paper's maximum degree `d = max{d_in, d_out}`.
    pub fn max_degree(&self) -> usize {
        self.max_in_degree().max(self.max_out_degree())
    }

    /// Returns `true` if a directed link `⟨u, v⟩` exists.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.out_adj[u.index()]
            .iter()
            .any(|&e| self.links[e.index()].target == v)
    }

    /// All link ids from `u` to `v` (there may be several: multigraph).
    pub fn links_between(&self, u: NodeId, v: NodeId) -> Vec<LinkId> {
        self.out_adj[u.index()]
            .iter()
            .copied()
            .filter(|&e| self.links[e.index()].target == v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn degrees_sum_to_link_count() {
        let g = DiGraph::from_links(4, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (0, 3)]);
        let m = g.link_count();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        // The paper's identity: Σ d_in = Σ d_out = m.
        assert_eq!(in_sum, m);
        assert_eq!(out_sum, m);
    }

    #[test]
    fn parallel_links_are_kept() {
        let mut g = DiGraph::new(2);
        let e1 = g.add_link(0, 1);
        let e2 = g.add_link(0, 1);
        assert_ne!(e1, e2);
        assert_eq!(g.links_between(0.into(), 1.into()), vec![e1, e2]);
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn undirected_construction_doubles_links() {
        let g = DiGraph::from_undirected_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(g.link_count(), 4);
        assert!(g.has_link(0.into(), 1.into()));
        assert!(g.has_link(1.into(), 0.into()));
        assert!(!g.has_link(0.into(), 2.into()));
    }

    #[test]
    fn adjacency_is_consistent_with_link_endpoints() {
        let g = DiGraph::from_links(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        for v in g.nodes() {
            for &e in g.out_links(v) {
                assert_eq!(g.link(e).source(), v);
            }
            for &e in g.in_links(v) {
                assert_eq!(g.link(e).target(), v);
            }
        }
    }

    #[test]
    fn head_tail_aliases() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let l = g.link(LinkId::new(0));
        assert_eq!(l.tail(), l.source());
        assert_eq!(l.head(), l.target());
        assert_eq!(l.to_string(), "⟨v0, v1⟩");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_link_validates_endpoints() {
        let mut g = DiGraph::new(1);
        g.add_link(0, 1);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = DiGraph::new(1);
        let v = g.add_node();
        assert_eq!(v.index(), 1);
        g.add_link(0, v);
        assert_eq!(g.in_degree(v), 1);
    }

    #[test]
    fn serde_round_trip() {
        let g = DiGraph::from_links(3, [(0, 1), (1, 2), (2, 0)]);
        let json = serde_json_like(&g);
        assert!(json.contains("links"));
    }

    /// Minimal serialization smoke test without pulling serde_json in: use
    /// the Debug formatting of the Serialize-derived structure.
    fn serde_json_like(g: &DiGraph) -> String {
        format!("{g:?}")
    }
}
