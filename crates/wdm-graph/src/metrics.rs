//! Graph statistics and reachability utilities.
//!
//! The paper's complexity claims are parameterized on `n`, `m`, and the
//! maximum degree `d`; the experiment harness uses these helpers to report
//! those parameters and to check that generated WANs are strongly connected
//! (so that every `s → t` routing query is feasible given enough
//! wavelengths).

use crate::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Summary statistics of a graph, as the experiment tables report them.
///
/// # Examples
///
/// ```
/// use wdm_graph::{topology, metrics::DegreeStats};
/// let stats = DegreeStats::of(&topology::ring(8, true));
/// assert_eq!(stats.n, 8);
/// assert_eq!(stats.m, 16);
/// assert_eq!(stats.max_degree, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Node count `n`.
    pub n: usize,
    /// Directed link count `m`.
    pub m: usize,
    /// Maximum in-degree `d_in`.
    pub max_in_degree: usize,
    /// Maximum out-degree `d_out`.
    pub max_out_degree: usize,
    /// The paper's `d = max{d_in, d_out}`.
    pub max_degree: usize,
    /// Mean total (in + out) degree.
    pub mean_degree: f64,
}

impl DegreeStats {
    /// Computes statistics for `g`.
    pub fn of(g: &DiGraph) -> Self {
        let n = g.node_count();
        let m = g.link_count();
        DegreeStats {
            n,
            m,
            max_in_degree: g.max_in_degree(),
            max_out_degree: g.max_out_degree(),
            max_degree: g.max_degree(),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
        }
    }
}

/// Nodes reachable from `source` following link directions, as a boolean
/// mask indexed by node.
///
/// Runs BFS in `O(n + m)`.
pub fn reachable_from(g: &DiGraph, source: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    if source.index() >= g.node_count() {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &e in g.out_links(u) {
            let v = g.link(e).target();
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Nodes that can reach `target` following link directions.
pub fn reaching(g: &DiGraph, target: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    if target.index() >= g.node_count() {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[target.index()] = true;
    queue.push_back(target);
    while let Some(u) = queue.pop_front() {
        for &e in g.in_links(u) {
            let v = g.link(e).source();
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Returns `true` if every node can reach every other node.
///
/// A graph with zero or one node is strongly connected by convention.
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let root = NodeId::new(0);
    reachable_from(g, root).iter().all(|&r| r) && reaching(g, root).iter().all(|&r| r)
}

/// BFS hop distances from `source` (`None` for unreachable nodes).
///
/// # Examples
///
/// ```
/// use wdm_graph::{DiGraph, metrics::bfs_hops};
/// let g = DiGraph::from_links(3, [(0, 1), (1, 2)]);
/// let d = bfs_hops(&g, 0.into());
/// assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
/// ```
pub fn bfs_hops(g: &DiGraph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    if source.index() >= g.node_count() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let Some(du) = dist[u.index()] else {
            unreachable!("queued nodes have distances")
        };
        for &e in g.out_links(u) {
            let v = g.link(e).target();
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The directed diameter (longest finite BFS distance over all pairs), or
/// `None` if the graph is not strongly connected.
///
/// `O(n·(n + m))`; intended for the small reference topologies.
pub fn diameter(g: &DiGraph) -> Option<usize> {
    if g.node_count() == 0 {
        return Some(0);
    }
    let mut best = 0;
    for s in g.nodes() {
        for d in bfs_hops(g, s) {
            best = best.max(d?);
        }
    }
    Some(best)
}

/// Weakly-connected component labels (ignoring link direction), as a dense
/// `Vec<usize>` of component ids in `0..component_count`.
pub fn weak_components(g: &DiGraph) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(NodeId::new(start));
        while let Some(u) = queue.pop_front() {
            let neighbours = g
                .out_links(u)
                .iter()
                .map(|&e| g.link(e).target())
                .chain(g.in_links(u).iter().map(|&e| g.link(e).source()));
            for v in neighbours {
                if label[v.index()] == usize::MAX {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> DiGraph {
        DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn reachability_on_path() {
        let g = path_graph();
        assert_eq!(reachable_from(&g, 0.into()), vec![true; 4]);
        assert_eq!(reachable_from(&g, 2.into()), vec![false, false, true, true]);
        assert_eq!(reaching(&g, 0.into()), vec![true, false, false, false]);
    }

    #[test]
    fn path_is_not_strongly_connected_but_cycle_is() {
        assert!(!is_strongly_connected(&path_graph()));
        let cycle = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(is_strongly_connected(&cycle));
    }

    #[test]
    fn trivial_graphs_are_strongly_connected() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert!(!is_strongly_connected(&DiGraph::new(2)));
    }

    #[test]
    fn bfs_hops_handles_unreachable() {
        let g = DiGraph::from_links(3, [(0, 1)]);
        assert_eq!(bfs_hops(&g, 0.into()), vec![Some(0), Some(1), None]);
    }

    #[test]
    fn diameter_of_cycle() {
        let cycle = DiGraph::from_links(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(diameter(&cycle), Some(4));
        assert_eq!(diameter(&path_graph()), None);
    }

    #[test]
    fn weak_components_count() {
        let mut g = DiGraph::new(5);
        g.add_link(0, 1);
        g.add_link(2, 3);
        let labels = weak_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert_ne!(labels[4], labels[2]);
    }

    #[test]
    fn degree_stats_mean() {
        let g = path_graph();
        let s = DegreeStats::of(&g);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
        assert_eq!(s.max_degree, 1);
    }
}
