//! Graphviz DOT export for visual inspection of topologies.

use crate::DiGraph;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the output.
    pub name: String,
    /// Optional per-node labels (defaults to `v<i>`).
    pub node_labels: Vec<String>,
    /// Optional per-link labels (e.g. wavelength sets), indexed by link.
    pub link_labels: Vec<String>,
    /// Collapse antiparallel link pairs into one undirected-looking edge
    /// (`dir=both`) — matches how WAN fibre maps are usually drawn.
    pub merge_fibre_pairs: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "wdm".to_string(),
            node_labels: Vec::new(),
            link_labels: Vec::new(),
            merge_fibre_pairs: true,
        }
    }
}

/// Renders `graph` as Graphviz DOT.
///
/// # Examples
///
/// ```
/// use wdm_graph::{dot, DiGraph};
///
/// let g = DiGraph::from_undirected_edges(2, [(0, 1)]);
/// let text = dot::to_dot(&g, &dot::DotOptions::default());
/// assert!(text.starts_with("digraph wdm {"));
/// assert!(text.contains("v0 -> v1 [dir=both]"));
/// ```
pub fn to_dot(graph: &DiGraph, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", options.name);
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for v in graph.nodes() {
        match options.node_labels.get(v.index()) {
            Some(label) => {
                let _ = writeln!(out, "  v{} [label=\"{}\"];", v.index(), label);
            }
            None => {
                let _ = writeln!(out, "  v{};", v.index());
            }
        }
    }
    let mut skip = vec![false; graph.link_count()];
    for (e, l) in graph.links() {
        if skip[e.index()] {
            continue;
        }
        let (u, v) = (l.tail().index(), l.head().index());
        let mut attrs: Vec<String> = Vec::new();
        if let Some(label) = options.link_labels.get(e.index()) {
            if !label.is_empty() {
                attrs.push(format!("label=\"{label}\""));
            }
        }
        if options.merge_fibre_pairs {
            // Find the first unused reverse link to pair with.
            let reverse = graph
                .links_between(l.head(), l.tail())
                .into_iter()
                .find(|r| !skip[r.index()] && r.index() > e.index());
            if let Some(r) = reverse {
                skip[r.index()] = true;
                attrs.push("dir=both".to_string());
            }
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  v{u} -> v{v};");
        } else {
            let _ = writeln!(out, "  v{u} -> v{v} [{}];", attrs.join(" "));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn merges_fibre_pairs() {
        let g = DiGraph::from_undirected_edges(3, [(0, 1), (1, 2)]);
        let text = to_dot(&g, &DotOptions::default());
        assert_eq!(text.matches("dir=both").count(), 2);
        assert_eq!(text.matches("->").count(), 2);
    }

    #[test]
    fn directed_mode_keeps_all_links() {
        let g = DiGraph::from_undirected_edges(3, [(0, 1), (1, 2)]);
        let opts = DotOptions {
            merge_fibre_pairs: false,
            ..DotOptions::default()
        };
        let text = to_dot(&g, &opts);
        assert_eq!(text.matches("->").count(), 4);
        assert!(!text.contains("dir=both"));
    }

    #[test]
    fn labels_are_applied() {
        let g = DiGraph::from_links(2, [(0, 1)]);
        let opts = DotOptions {
            name: "demo".to_string(),
            node_labels: vec!["Seattle".to_string(), "Denver".to_string()],
            link_labels: vec!["λ0,λ2".to_string()],
            merge_fibre_pairs: false,
        };
        let text = to_dot(&g, &opts);
        assert!(text.contains("digraph demo {"));
        assert!(text.contains("label=\"Seattle\""));
        assert!(text.contains("label=\"λ0,λ2\""));
    }

    #[test]
    fn nsfnet_renders_21_fibres() {
        let text = to_dot(&topology::nsfnet(), &DotOptions::default());
        assert_eq!(text.matches("dir=both").count(), 21);
    }

    #[test]
    fn unidirectional_ring_has_no_merges() {
        let text = to_dot(&topology::ring(5, false), &DotOptions::default());
        assert!(!text.contains("dir=both"));
        assert_eq!(text.matches("->").count(), 5);
    }
}
