//! Property-based tests of the graph substrate and topology generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm_graph::metrics::{bfs_hops, is_strongly_connected, weak_components, DegreeStats};
use wdm_graph::topology::{self, WaxmanParams};
use wdm_graph::{DiGraph, NodeId};

proptest! {
    #[test]
    fn degree_sums_equal_link_count(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..100),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = DiGraph::from_links(n, edges);
        let m = g.link_count();
        prop_assert_eq!(g.nodes().map(|v| g.in_degree(v)).sum::<usize>(), m);
        prop_assert_eq!(g.nodes().map(|v| g.out_degree(v)).sum::<usize>(), m);
        let stats = DegreeStats::of(&g);
        prop_assert!(stats.max_degree <= m);
        prop_assert!(m <= stats.max_degree.max(1) * n);
    }

    #[test]
    fn adjacency_round_trips(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 1..60),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = DiGraph::from_links(n, edges.clone());
        // Every inserted edge is reachable via its id and its endpoints'
        // adjacency lists.
        for (i, &(u, v)) in edges.iter().enumerate() {
            let l = g.link(wdm_graph::LinkId::new(i));
            prop_assert_eq!(l.tail().index(), u);
            prop_assert_eq!(l.head().index(), v);
            prop_assert!(g.out_links(NodeId::new(u)).contains(&wdm_graph::LinkId::new(i)));
            prop_assert!(g.in_links(NodeId::new(v)).contains(&wdm_graph::LinkId::new(i)));
        }
    }

    #[test]
    fn random_sparse_generator_invariants(
        n in 3usize..60,
        extra_frac in 0usize..3,
        seed in 0u64..1000,
    ) {
        let extra = (n * extra_frac) / 4;
        let mut rng = SmallRng::seed_from_u64(seed);
        match topology::random_sparse(n, extra, 4, &mut rng) {
            Ok(g) => {
                prop_assert_eq!(g.node_count(), n);
                prop_assert_eq!(g.link_count(), 2 * (n + extra));
                prop_assert!(g.max_degree() <= 4);
                prop_assert!(is_strongly_connected(&g));
                // Undirected construction: symmetric degrees.
                for v in g.nodes() {
                    prop_assert_eq!(g.in_degree(v), g.out_degree(v));
                }
            }
            Err(_) => {
                // Only acceptable when the chord budget is infeasible.
                prop_assert!(extra > n * (4 - 2) / 2 || extra > n * (n - 1) / 2 - n);
            }
        }
    }

    #[test]
    fn waxman_always_strongly_connected(
        n in 2usize..40,
        seed in 0u64..1000,
        alpha in 0.05f64..1.0,
        beta in 0.05f64..1.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::waxman(n, WaxmanParams { alpha, beta }, &mut rng).expect("valid");
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(is_strongly_connected(&g));
    }

    #[test]
    fn geometric_always_strongly_connected(
        n in 2usize..40,
        seed in 0u64..1000,
        radius in 0.01f64..0.8,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::random_geometric(n, radius, &mut rng).expect("valid");
        prop_assert!(is_strongly_connected(&g));
        prop_assert_eq!(weak_components(&g).iter().max().copied().unwrap_or(0), 0);
    }

    #[test]
    fn bfs_hops_are_consistent(
        rows in 1usize..5,
        cols in 1usize..5,
    ) {
        let g = topology::grid(rows, cols);
        let d = bfs_hops(&g, NodeId::new(0));
        // On a grid, hop distance from corner (0,0) to (r,c) is r + c.
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(d[r * cols + c], Some(r + c));
            }
        }
    }

    #[test]
    fn ring_hop_distances(n in 3usize..40, uni in prop::bool::ANY) {
        let g = topology::ring(n, !uni);
        let d = bfs_hops(&g, NodeId::new(0));
        for (v, &got) in d.iter().enumerate() {
            let expect = if uni { v } else { v.min(n - v) };
            prop_assert_eq!(got, Some(expect), "node {} of {}", v, n);
        }
    }
}
