//! E10 integration — dynamic provisioning through the public API:
//! the engine's bookkeeping stays consistent with the routing layer
//! across long provision/release histories, and the policy ordering
//! (optimal ≤ lightpath-only in accepted calls) holds on fixed workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wdm::prelude::*;
use wdm::rwa::{simulate, workload, Policy, ProvisioningEngine};

fn base(k: usize, seed: u64) -> WdmNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    wdm::core::instance::random_network(
        topology::nsfnet(),
        &InstanceConfig {
            k,
            availability: Availability::Probability(0.8),
            link_cost: (10, 30),
            conversion: ConversionSpec::Uniform { lo: 1, hi: 2 },
        },
        &mut rng,
    )
    .expect("valid")
}

#[test]
fn long_history_keeps_engine_consistent() {
    let net = base(6, 1);
    let mut engine = ProvisioningEngine::new(&net);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut live = Vec::new();
    for step in 0..600 {
        if !live.is_empty() && rng.gen_bool(0.45) {
            let at = rng.gen_range(0..live.len());
            let id = live.swap_remove(at);
            engine.release(id).expect("live connection releases");
        } else {
            let s = rng.gen_range(0..net.node_count());
            let mut t = rng.gen_range(0..net.node_count() - 1);
            if t >= s {
                t += 1;
            }
            if let Ok(id) = engine.provision(NodeId::new(s), NodeId::new(t), Policy::Optimal) {
                live.push(id);
            }
        }
        // Invariant: every active path is valid on the *base* network and
        // no two active paths share a resource.
        if step % 100 == 99 {
            let mut used = std::collections::HashSet::new();
            for id in engine.active_connections().collect::<Vec<_>>() {
                let p = engine.path_of(id).expect("active").clone();
                p.validate(engine.base()).expect("valid on base");
                for h in p.hops() {
                    assert!(
                        used.insert((h.link, h.wavelength)),
                        "resource double-booked at step {step}"
                    );
                }
            }
        }
    }
    // Release everything; utilization returns to zero.
    for id in live {
        engine.release(id).expect("releases");
    }
    assert_eq!(engine.active_count(), 0);
    assert_eq!(engine.utilization(), 0.0);
}

#[test]
fn policy_dominance_on_identical_arrivals() {
    let net = base(4, 3);
    let mut rng = SmallRng::seed_from_u64(4);
    let reqs = workload::poisson_requests(net.node_count(), 400, 20.0, 1.0, &mut rng);
    let optimal = simulate(&net, &reqs, Policy::Optimal);
    let lightpath = simulate(&net, &reqs, Policy::LightpathOnly);
    let first_fit = simulate(&net, &reqs, Policy::FirstFit);
    assert_eq!(optimal.offered, 400);
    // Greedy online acceptance is not provably monotone, but on seeded
    // NSFNET workloads the conversion-capable policy consistently accepts
    // at least as much traffic.
    assert!(
        optimal.accepted >= lightpath.accepted,
        "optimal {} < lightpath-only {}",
        optimal.accepted,
        lightpath.accepted
    );
    assert!(
        lightpath.accepted >= first_fit.accepted,
        "lightpath-only {} < first-fit {}",
        lightpath.accepted,
        first_fit.accepted
    );
    // Only the conversion-capable policy converts.
    assert_eq!(lightpath.conversions, 0);
    assert_eq!(first_fit.conversions, 0);
}

#[test]
fn provisioned_paths_come_from_the_optimal_router() {
    // The engine's first route on an empty network must equal the plain
    // router's answer on the base network.
    let net = base(8, 5);
    let mut engine = ProvisioningEngine::new(&net);
    let id = engine
        .provision(0.into(), 13.into(), Policy::Optimal)
        .expect("free network routes");
    let via_engine = engine.path_of(id).expect("active").clone();
    let direct = find_optimal_semilightpath(&net, 0.into(), 13.into())
        .expect("ok")
        .expect("reachable");
    assert_eq!(via_engine.cost(), direct.cost());
}

#[test]
fn protection_pairs_can_be_provisioned_atomically() {
    // Reserve a disjoint pair through the engine: provision primary,
    // then the backup must still be provisionable because disjointness
    // kept its resources free.
    let net = base(8, 6);
    let pair = disjoint_semilightpath_pair(&net, 0.into(), 13.into(), Disjointness::LinkWavelength)
        .expect("ok")
        .expect("protectable");
    let mut engine = ProvisioningEngine::new(&net);
    let prim = engine
        .provision(0.into(), 13.into(), Policy::Optimal)
        .expect("primary provisions");
    // The engine may have picked a different primary than `pair.primary`,
    // but a backup disjoint from *whatever it picked* must still exist
    // because the instance is protectable.
    let backup = engine.provision(0.into(), 13.into(), Policy::Optimal);
    assert!(
        backup.is_ok(),
        "protectable instance must accept a second connection"
    );
    let p1 = engine.path_of(prim).expect("active").clone();
    let p2 = engine.path_of(backup.expect("ok")).expect("active").clone();
    for h1 in p1.hops() {
        for h2 in p2.hops() {
            assert!(!(h1.link == h2.link && h1.wavelength == h2.wavelength));
        }
    }
    let _ = pair;
}
