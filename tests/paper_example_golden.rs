//! Golden-file test: the paper's worked example (Figs. 1–4), pinned.
//!
//! The fixture `tests/fixtures/paper_example_all_pairs.golden` freezes
//! the full 7×7 all-pairs optimal-cost matrix of the worked example plus
//! the wavelength assignment of every optimal semilightpath (hop list
//! `link/λ`). Any change to the auxiliary-graph construction, the
//! Dijkstra solvers, or the parallel row partition that alters a single
//! cost or assignment shows up as a readable diff here.
//!
//! To regenerate after an *intentional* change, run with
//! `UPDATE_GOLDEN=1` and commit the new fixture (record why in
//! CHANGES.md).

use wdm::core::paper_example;
use wdm::prelude::*;
use wdm::{AllPairs, AllPairsPaths};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/paper_example_all_pairs.golden"
);

/// Renders the worked example's all-pairs solution as the fixture text.
///
/// Computed with the *parallel* solver (2 workers) and cross-checked
/// against the serial one inline, so the golden file also pins the
/// serial-equivalence contract on the paper instance.
fn render() -> String {
    let net = paper_example::network();
    let n = net.node_count();
    let serial = AllPairs::solve_with(&net, HeapKind::Fibonacci);
    let parallel = AllPairs::solve_parallel(&net, HeapKind::Fibonacci, 2);
    let paths = AllPairsPaths::solve(&net);

    let mut out = String::new();
    out.push_str("# Worked example (Figs. 1-4): all-pairs optimal semilightpath costs\n");
    out.push_str("# rows = source, columns = destination, paper nodes 1..7; inf = unreachable\n");
    for s in 0..n {
        let row: Vec<String> = (0..n)
            .map(|t| {
                let sp = parallel.cost(NodeId::new(s), NodeId::new(t));
                assert_eq!(
                    sp,
                    serial.cost(NodeId::new(s), NodeId::new(t)),
                    "parallel/serial divergence at ({s}, {t})"
                );
                assert_eq!(sp, paths.cost(NodeId::new(s), NodeId::new(t)));
                if sp.is_infinite() {
                    "inf".to_string()
                } else {
                    sp.to_string()
                }
            })
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }

    out.push_str("# optimal wavelength assignments: s->t cost hops(link/lambda)\n");
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let (sn, tn) = (NodeId::new(s), NodeId::new(t));
            match paths.path(sn, tn) {
                Some(p) => {
                    p.validate(&net).expect("golden path validates");
                    let hops: Vec<String> = p
                        .hops()
                        .iter()
                        .map(|h| format!("{}/{}", h.link.index(), h.wavelength.index()))
                        .collect();
                    out.push_str(&format!("{s}->{t} {} {}\n", p.cost(), hops.join(",")));
                }
                None => out.push_str(&format!("{s}->{t} inf -\n")),
            }
        }
    }
    out
}

#[test]
fn paper_example_all_pairs_matches_golden_fixture() {
    let rendered = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, golden,
        "worked-example all-pairs output diverged from the pinned fixture; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and \
         note it in CHANGES.md"
    );
}
