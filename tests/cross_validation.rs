//! Property-based cross-validation of the four independent solvers:
//! Liang–Shen (layered graph), CFZ (wavelength graph), the state-space
//! reference oracle, and the distributed Theorem-3 protocol.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm::core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm::core::reference::reference_route;
use wdm::prelude::*;

/// Instance families with triangle-consistent conversion costs (where all
/// four solvers must agree exactly — see the CFZ chain caveat).
fn triangle_consistent_config(k: usize, which: u8) -> InstanceConfig {
    let conversion = match which % 3 {
        0 => ConversionSpec::NoConversion,
        1 => ConversionSpec::AllFree,
        _ => ConversionSpec::Uniform { lo: 1, hi: 4 },
    };
    InstanceConfig {
        k,
        availability: Availability::Probability(0.6),
        link_cost: (5, 60),
        conversion,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn four_solvers_agree_on_triangle_consistent_instances(
        seed in 0u64..10_000,
        k in 1usize..5,
        conv in 0u8..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(9, 4, 4, &mut rng).expect("feasible");
        let net = random_network(graph, &triangle_consistent_config(k, conv), &mut rng)
            .expect("valid");
        let ls = LiangShenRouter::new();
        let cfz = CfzRouter::new();
        for s in 0..net.node_count() {
            let tree = wdm::distributed_tree(&net, NodeId::new(s)).expect("terminates");
            for t in 0..net.node_count() {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                let a = ls.route(&net, sn, tn).expect("ok").cost();
                let b = cfz.route(&net, sn, tn).expect("ok").cost();
                let c = reference_route(&net, sn, tn)
                    .expect("ok")
                    .map(|p| p.cost())
                    .unwrap_or(Cost::INFINITY);
                let d = if s == t { Cost::ZERO } else { tree.costs[t] };
                prop_assert_eq!(a, b, "LS vs CFZ at {} → {}", s, t);
                prop_assert_eq!(a, c, "LS vs reference at {} → {}", s, t);
                prop_assert_eq!(a, d, "LS vs distributed at {} → {}", s, t);
            }
        }
    }

    /// On arbitrary (possibly chain-inconsistent) instances, LS, the
    /// reference oracle, and the distributed protocol still agree —
    /// they all implement Equation (1) exactly.
    #[test]
    fn equation1_solvers_agree_on_arbitrary_instances(
        seed in 0u64..10_000,
        density in 0.1f64..0.9,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(8, 4, 4, &mut rng).expect("feasible");
        let config = InstanceConfig {
            k: 4,
            availability: Availability::Probability(0.5),
            link_cost: (1, 30),
            conversion: ConversionSpec::RandomMatrix { density, lo: 1, hi: 10 },
        };
        let net = random_network(graph, &config, &mut rng).expect("valid");
        let ls = LiangShenRouter::new();
        for s in 0..net.node_count() {
            let tree = wdm::distributed_tree(&net, NodeId::new(s)).expect("terminates");
            for t in 0..net.node_count() {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                let a = ls.route(&net, sn, tn).expect("ok").cost();
                let c = reference_route(&net, sn, tn)
                    .expect("ok")
                    .map(|p| p.cost())
                    .unwrap_or(Cost::INFINITY);
                let d = if s == t { Cost::ZERO } else { tree.costs[t] };
                prop_assert_eq!(a, c, "LS vs reference at {} → {}", s, t);
                prop_assert_eq!(a, d, "LS vs distributed at {} → {}", s, t);
            }
        }
    }

    /// Every path any solver returns validates against the network and
    /// has a recomputed cost equal to its recorded cost.
    #[test]
    fn returned_paths_always_validate(
        seed in 0u64..10_000,
        k in 1usize..6,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(10, 5, 4, &mut rng).expect("feasible");
        let net = random_network(graph, &InstanceConfig::standard(k), &mut rng).expect("valid");
        let ls = LiangShenRouter::new();
        for s in 0..net.node_count() {
            for t in 0..net.node_count() {
                let (sn, tn) = (NodeId::new(s), NodeId::new(t));
                if let Some(p) = ls.route(&net, sn, tn).expect("ok").path {
                    p.validate(&net).expect("LS path valid");
                    if s != t {
                        assert_eq!(p.source(&net), Some(sn));
                        assert_eq!(p.target(&net), Some(tn));
                    }
                }
            }
        }
    }

    /// Heap choice never changes the computed optimum (E9 sanity).
    #[test]
    fn heap_ablation_is_cost_invariant(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(10, 5, 4, &mut rng).expect("feasible");
        let net = random_network(graph, &InstanceConfig::standard(4), &mut rng).expect("valid");
        let costs: Vec<Cost> = HeapKind::ALL
            .iter()
            .map(|&h| {
                LiangShenRouter::with_heap(h)
                    .route(&net, 0.into(), 5.into())
                    .expect("ok")
                    .cost()
            })
            .collect();
        prop_assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }

    /// Optimality is monotone in resources: removing a wavelength from
    /// the universe can never make routes cheaper.
    #[test]
    fn cost_is_monotone_in_wavelength_availability(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(8, 4, 4, &mut rng).expect("feasible");
        let rich = random_network(
            graph.clone(),
            &InstanceConfig {
                k: 4,
                availability: Availability::Full,
                link_cost: (5, 50),
                conversion: ConversionSpec::AllFree,
            },
            &mut rng,
        ).expect("valid");
        // Restrict: drop wavelength 3 from every link (keep same costs).
        let mut builder = WdmNetwork::builder(graph, 4)
            .uniform_conversion(ConversionPolicy::Free);
        for (e, _) in rich.graph().links() {
            let entries: Vec<(wdm::Wavelength, Cost)> = rich
                .wavelengths_on(e)
                .iter()
                .filter(|(w, _)| w.index() != 3)
                .collect();
            builder = builder.link_wavelengths_typed(e, entries);
        }
        let poor = builder.build().expect("valid");
        let ls = LiangShenRouter::new();
        for t in 1..poor.node_count() {
            let rich_cost = ls.route(&rich, 0.into(), NodeId::new(t)).expect("ok").cost();
            let poor_cost = ls.route(&poor, 0.into(), NodeId::new(t)).expect("ok").cost();
            prop_assert!(rich_cost <= poor_cost, "dest {}", t);
        }
    }
}
