//! E4 — the distributed protocol (Theorem 3) on reference WAN topologies:
//! correctness against the centralized solver and measured complexity
//! against the `O(km)` message / `O(kn)` time claims.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm::core::instance::{random_network, InstanceConfig};
use wdm::distributed::chandy_misra::chandy_misra_sssp;
use wdm::graph::topology::ReferenceTopology;
use wdm::prelude::*;

#[test]
fn distributed_tree_matches_centralized_on_every_reference_topology() {
    for topo in ReferenceTopology::ALL {
        let mut rng = SmallRng::seed_from_u64(41);
        let net =
            random_network(topo.build(), &InstanceConfig::standard(4), &mut rng).expect("valid");
        let router = LiangShenRouter::new();
        let tree = wdm::distributed_tree(&net, 0.into()).expect("terminates");
        assert!(tree.root_detected_termination, "{topo}");
        for t in 1..net.node_count() {
            let central = router
                .route(&net, 0.into(), NodeId::new(t))
                .expect("ok")
                .cost();
            assert_eq!(central, tree.costs[t], "{topo}, dest {t}");
            if let Some(p) = tree.path_to(NodeId::new(t)) {
                p.validate(&net).expect("valid distributed path");
            }
        }
    }
}

#[test]
fn message_and_time_complexity_track_paper_bounds() {
    // Theorem 3: O(km) messages, O(kn) time. Measure the constant on
    // NSFNET across k and require it to stay small and stable.
    let mut ratios = Vec::new();
    for k in [2usize, 4, 8] {
        let mut rng = SmallRng::seed_from_u64(99);
        let net = random_network(
            wdm::graph::topology::nsfnet(),
            &InstanceConfig::standard(k),
            &mut rng,
        )
        .expect("valid");
        let tree = wdm::distributed_tree(&net, 0.into()).expect("terminates");
        let km = (net.k() * net.link_count()) as f64;
        let kn = (net.k() * net.node_count()) as f64;
        ratios.push(tree.data_messages as f64 / km);
        assert!(
            tree.data_messages as f64 <= 4.0 * km,
            "k = {k}: {} data messages vs km = {km}",
            tree.data_messages
        );
        assert!(
            (tree.stats.makespan as f64) <= 4.0 * kn,
            "k = {k}: makespan {} vs kn = {kn}",
            tree.stats.makespan
        );
    }
    // The message/km ratio must not grow with k (it is the hidden
    // constant of the bound).
    let first = ratios.first().copied().expect("non-empty");
    for r in &ratios {
        assert!(*r <= 2.5 * first, "ratio drift: {ratios:?}");
    }
}

#[test]
fn chandy_misra_agrees_with_fibonacci_dijkstra_on_wans() {
    use wdm::core::csr::{CsrBuilder, EdgeRole};
    for topo in ReferenceTopology::ALL {
        let g = topo.build();
        let weights: Vec<Cost> = (0..g.link_count())
            .map(|i| Cost::new(1 + (i as u64 * 7) % 19))
            .collect();
        let out = chandy_misra_sssp(&g, &weights, 0.into()).expect("terminates");
        // Centralized oracle via the shared Dijkstra.
        let mut b = CsrBuilder::new(g.node_count());
        for (e, l) in g.links() {
            b.add_edge(
                l.tail().index(),
                l.head().index(),
                weights[e.index()],
                EdgeRole::Tap,
            );
        }
        let csr = b.build();
        let tree = wdm::core::dijkstra_with(HeapKind::Fibonacci, &csr, 0);
        assert_eq!(out.dist, tree.dist, "{topo}");
        assert!(out.root_detected_termination, "{topo}");
    }
}

#[test]
fn acks_equal_data_messages_in_dijkstra_scholten() {
    // Every data message is acknowledged exactly once.
    let mut rng = SmallRng::seed_from_u64(7);
    let net = random_network(
        wdm::graph::topology::eon(),
        &InstanceConfig::standard(3),
        &mut rng,
    )
    .expect("valid");
    let tree = wdm::distributed_tree(&net, 5.into()).expect("terminates");
    assert_eq!(tree.data_messages, tree.ack_messages);
    assert_eq!(tree.stats.messages, tree.data_messages + tree.ack_messages);
}

#[test]
fn distributed_route_on_unidirectional_ring_uses_the_long_way() {
    // On a unidirectional ring, node n-1 is n-1 hops from node 0.
    let g = wdm::graph::topology::ring(6, false);
    let mut b = WdmNetwork::builder(g, 1);
    for e in 0..6 {
        b = b.link_wavelengths(e, [(0, 10)]);
    }
    let net = b.build().expect("valid");
    let out = wdm::route_distributed(&net, 0.into(), 5.into()).expect("terminates");
    let p = out.path.expect("reachable");
    assert_eq!(p.len(), 5);
    assert_eq!(out.cost, Cost::new(50));
    assert!(p.is_lightpath());
}
