//! E1 — end-to-end reproduction of the paper's worked example
//! (Figs. 1–4) through the public `wdm` API.

use wdm::core::paper_example;
use wdm::prelude::*;
use wdm::AuxiliaryGraph;

#[test]
fn figure_1_network_shape() {
    let net = paper_example::network();
    assert_eq!(net.node_count(), 7);
    assert_eq!(net.link_count(), 11);
    assert_eq!(net.k(), 4);
    // Σ_e |Λ(e)| = 2+3+2+3+2+2+1+2+2+2+3 = 24 multigraph links (Fig. 2).
    assert_eq!(net.multigraph_link_count(), 24);
    assert_eq!(net.k0(), 3);
}

#[test]
fn figure_2_lambda_tables() {
    let net = paper_example::network();
    for v in 0..7 {
        let node = NodeId::new(v);
        let lin: Vec<usize> = net.lambda_in(node).iter().map(|w| w.index()).collect();
        let lout: Vec<usize> = net.lambda_out(node).iter().map(|w| w.index()).collect();
        assert_eq!(
            lin,
            paper_example::LAMBDA_IN[v],
            "Λ_in at paper node {}",
            v + 1
        );
        assert_eq!(
            lout,
            paper_example::LAMBDA_OUT[v],
            "Λ_out at paper node {}",
            v + 1
        );
    }
}

#[test]
fn figures_3_and_4_construction_sizes() {
    let net = paper_example::network();
    let aux = AuxiliaryGraph::core(&net);
    let stats = aux.stats();
    // |V'| = Σ (|X_v| + |Y_v|); from the Λ tables:
    // (2+4) + (2+4) + (3+3) + (4+1) + (1+4) + (2+3) + (4+0) = 37.
    assert_eq!(stats.core_nodes, 37);
    // |E_org| = Σ_e |Λ(e)| = 24.
    assert_eq!(stats.multigraph_links, 24);
    stats.check_paper_bounds().expect("Observations 1–3 hold");
    // Observation 2 upper bounds: |V'| ≤ 2kn = 56, Σ|E_v| ≤ k²n = 112.
    assert!(stats.core_nodes <= 2 * 4 * 7);
    assert!(stats.conversion_edges <= 4 * 4 * 7);
}

#[test]
fn g_st_from_node_1_to_node_7() {
    let net = paper_example::network();
    let aux = AuxiliaryGraph::for_pair(&net, NodeId::new(0), NodeId::new(6));
    let stats = aux.stats();
    // s' taps |Y_1| = 4 states; t'' taps |X_7| = 4 states.
    assert_eq!(stats.terminal_nodes, 2);
    assert_eq!(stats.tap_edges, 8);
    // The paper's bound: nodes ≤ 2kn + 2 and links ≤ k²n + 2k + km.
    assert!(stats.total_nodes() <= 2 * 4 * 7 + 2);
    assert!(stats.total_edges() <= 4 * 4 * 7 + 2 * 4 + 4 * 11);
}

#[test]
fn optimal_routes_from_every_source_to_node_7() {
    let net = paper_example::network();
    let router = LiangShenRouter::new();
    for s in 0..6 {
        let result = router
            .route(&net, NodeId::new(s), NodeId::new(6))
            .expect("in range");
        let path = result
            .path
            .unwrap_or_else(|| panic!("paper node {} reaches node 7", s + 1));
        path.validate(&net).expect("valid semilightpath");
        // Independent oracle agreement.
        let oracle = wdm::core::reference::reference_route(&net, NodeId::new(s), NodeId::new(6))
            .expect("in range")
            .expect("reachable");
        assert_eq!(path.cost(), oracle.cost(), "paper source {}", s + 1);
    }
}

#[test]
fn distributed_protocol_agrees_on_the_example() {
    let net = paper_example::network();
    let router = LiangShenRouter::new();
    for s in 0..6 {
        let tree = wdm::distributed_tree(&net, NodeId::new(s)).expect("terminates");
        assert!(tree.root_detected_termination);
        for t in 0..7 {
            let central = router
                .route(&net, NodeId::new(s), NodeId::new(t))
                .expect("in range")
                .cost();
            let dist = if s == t { Cost::ZERO } else { tree.costs[t] };
            assert_eq!(central, dist, "paper pair {} → {}", s + 1, t + 1);
        }
    }
}

#[test]
fn all_pairs_matrix_on_the_example() {
    let net = paper_example::network();
    let ap = AllPairs::solve(&net);
    // Node 7 (index 6) is a pure sink: column reachable, row unreachable.
    for v in 0..6 {
        assert!(ap.cost(NodeId::new(v), NodeId::new(6)).is_finite());
        assert!(ap.cost(NodeId::new(6), NodeId::new(v)).is_infinite());
    }
}
