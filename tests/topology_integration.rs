//! Routing across every topology family the library ships: reference
//! WANs, rings, grids, tori, and the random generators — end-to-end
//! through the public API.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm::core::instance::{random_network, Availability, ConversionSpec, InstanceConfig};
use wdm::graph::metrics;
use wdm::graph::topology::{self, ReferenceTopology, WaxmanParams};
use wdm::prelude::*;

fn full_availability_config(k: usize) -> InstanceConfig {
    InstanceConfig {
        k,
        availability: Availability::Full,
        link_cost: (10, 10),
        conversion: ConversionSpec::AllFree,
    }
}

#[test]
fn full_availability_routing_equals_hop_distance() {
    // With every wavelength on every link at cost 10 and free conversion,
    // the optimal semilightpath cost is 10 × BFS hop distance — an exact
    // oracle on any topology.
    let mut rng = SmallRng::seed_from_u64(1);
    let graphs = vec![
        topology::ring(9, true),
        topology::grid(3, 4),
        topology::torus(3, 3),
        topology::nsfnet(),
        topology::random_sparse(15, 8, 4, &mut rng).expect("feasible"),
    ];
    for g in graphs {
        let hops = metrics::bfs_hops(&g, 0.into());
        let net = random_network(g, &full_availability_config(3), &mut rng).expect("valid");
        let router = LiangShenRouter::new();
        for (t, hop) in hops.iter().enumerate() {
            let cost = router
                .route(&net, 0.into(), NodeId::new(t))
                .expect("ok")
                .cost();
            match hop {
                Some(h) => assert_eq!(cost, Cost::new(10 * *h as u64), "dest {t}"),
                None => assert!(cost.is_infinite(), "dest {t}"),
            }
        }
    }
}

#[test]
fn every_reference_topology_routes_all_pairs_with_enough_wavelengths() {
    for topo in ReferenceTopology::ALL {
        let mut rng = SmallRng::seed_from_u64(13);
        let net = random_network(
            topo.build(),
            &InstanceConfig {
                k: 4,
                availability: Availability::Full,
                link_cost: (1, 100),
                conversion: ConversionSpec::Uniform { lo: 1, hi: 1 },
            },
            &mut rng,
        )
        .expect("valid");
        let ap = AllPairs::solve(&net);
        // Strongly connected + full availability + full conversion ⇒
        // every pair reachable.
        for s in 0..net.node_count() {
            for t in 0..net.node_count() {
                assert!(
                    ap.cost(NodeId::new(s), NodeId::new(t)).is_finite(),
                    "{topo}: {s} → {t} unreachable"
                );
            }
        }
    }
}

#[test]
fn waxman_and_geometric_instances_route() {
    let mut rng = SmallRng::seed_from_u64(21);
    let wax = topology::waxman(20, WaxmanParams::default(), &mut rng).expect("valid");
    let geo = topology::random_geometric(20, 0.25, &mut rng).expect("valid");
    for g in [wax, geo] {
        assert!(metrics::is_strongly_connected(&g));
        let net = random_network(g, &InstanceConfig::standard(4), &mut rng).expect("valid");
        let router = LiangShenRouter::new();
        let mut reached = 0;
        for t in 1..net.node_count() {
            if router
                .route(&net, 0.into(), NodeId::new(t))
                .expect("ok")
                .path
                .is_some()
            {
                reached += 1;
            }
        }
        // Sparse availability can block some pairs, but most must route.
        assert!(reached >= net.node_count() / 2, "only {reached} reachable");
    }
}

#[test]
fn single_wavelength_network_is_pure_lightpath_routing() {
    // k = 1 degenerates to ordinary shortest paths; every route is a
    // lightpath (no conversion possible or needed).
    let mut rng = SmallRng::seed_from_u64(31);
    let net =
        random_network(topology::geant(), &full_availability_config(1), &mut rng).expect("valid");
    let router = LiangShenRouter::new();
    for t in 1..net.node_count() {
        if let Some(p) = router
            .route(&net, 0.into(), NodeId::new(t))
            .expect("ok")
            .path
        {
            assert!(p.is_lightpath());
            p.validate(&net).expect("valid");
        }
    }
}

#[test]
fn k0_bounded_instances_behave_like_section_iv() {
    // Large universe k = 64, but k0 = 2 per link: the auxiliary graph
    // must stay small (Observation 4/5), independent of k.
    let mut rng = SmallRng::seed_from_u64(47);
    let net = random_network(
        topology::nsfnet(),
        &InstanceConfig::bounded(64, 2),
        &mut rng,
    )
    .expect("valid");
    assert_eq!(net.k(), 64);
    assert!(net.k0() <= 2);
    let r = LiangShenRouter::new()
        .route(&net, 0.into(), 13.into())
        .expect("ok");
    let stats = r.aux_stats.expect("layered construction");
    let (n, m, d, k0) = (
        net.node_count(),
        net.link_count(),
        net.graph().max_degree(),
        net.k0(),
    );
    // Observation 5 (with the factor 2 the paper's statement drops:
    // each link's wavelengths enter both the head's X set and the tail's
    // Y set, so |V'| ≤ 2·Σ|Λ(e)| ≤ 2·m·k0): nodes O(mk0), edges
    // O(d²nk0² + mk0).
    assert!(stats.core_nodes <= 2 * m * k0);
    assert!(stats.conversion_edges + stats.multigraph_links <= d * d * n * k0 * k0 + m * k0);
    // Crucially: far smaller than the unrestricted 2kn bound.
    assert!(stats.core_nodes < 2 * net.k() * n / 4);
}
