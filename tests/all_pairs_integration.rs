//! E5 — all-pairs optimal semilightpaths: Corollary 1 (centralized over
//! `G_all`) and Corollary 2 (distributed), cross-validated pairwise.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm::core::instance::{random_network, InstanceConfig};
use wdm::distributed::all_pairs::distributed_all_pairs;
use wdm::prelude::*;

fn nsf_instance(seed: u64, k: usize) -> WdmNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_network(
        wdm::graph::topology::nsfnet(),
        &InstanceConfig::standard(k),
        &mut rng,
    )
    .expect("valid")
}

#[test]
fn corollary1_matrix_matches_pairwise_routing() {
    let net = nsf_instance(1, 3);
    let ap = AllPairs::solve(&net);
    let router = LiangShenRouter::new();
    for s in 0..net.node_count() {
        for t in 0..net.node_count() {
            let (sn, tn) = (NodeId::new(s), NodeId::new(t));
            assert_eq!(
                ap.cost(sn, tn),
                router.route(&net, sn, tn).expect("ok").cost(),
                "{s} → {t}"
            );
        }
    }
}

#[test]
fn corollary2_distributed_matches_corollary1() {
    let net = nsf_instance(2, 3);
    let central = AllPairs::solve(&net);
    let distributed = distributed_all_pairs(&net).expect("terminates");
    for s in 0..net.node_count() {
        for t in 0..net.node_count() {
            let (sn, tn) = (NodeId::new(s), NodeId::new(t));
            assert_eq!(central.cost(sn, tn), distributed.cost(sn, tn), "{s} → {t}");
        }
    }
}

#[test]
fn g_all_is_built_once_and_respects_bounds() {
    let net = nsf_instance(3, 5);
    let ap = AllPairs::solve(&net);
    let stats = ap.aux_stats();
    stats.check_paper_bounds().expect("Observations hold");
    // G_all adds 2n terminals and Σ(|X_v| + |Y_v|) tap edges.
    assert_eq!(stats.terminal_nodes, 2 * net.node_count());
    assert_eq!(stats.tap_edges, stats.core_nodes);
    // n Dijkstra runs each settle at most |V_all| nodes.
    assert!(ap.total_settled() <= net.node_count() * stats.total_nodes());
}

#[test]
fn all_pairs_triangle_inequality() {
    // Optimal costs must satisfy d(s,t) ≤ d(s,v) + d(v,t): concatenating
    // two optimal semilightpaths is a valid semilightpath when the
    // junction conversion is free... which it is not in general. But with
    // AllFree conversion the inequality is exact.
    let mut rng = SmallRng::seed_from_u64(4);
    let config = InstanceConfig {
        k: 3,
        availability: wdm::prelude::Availability::Probability(0.7),
        link_cost: (5, 40),
        conversion: wdm::prelude::ConversionSpec::AllFree,
    };
    let net = random_network(wdm::graph::topology::abilene(), &config, &mut rng).expect("valid");
    let ap = AllPairs::solve(&net);
    let n = net.node_count();
    for s in 0..n {
        for v in 0..n {
            for t in 0..n {
                let (sn, vn, tn) = (NodeId::new(s), NodeId::new(v), NodeId::new(t));
                assert!(
                    ap.cost(sn, tn) <= ap.cost(sn, vn) + ap.cost(vn, tn),
                    "triangle violated: {s} → {v} → {t}"
                );
            }
        }
    }
}

#[test]
fn distributed_all_pairs_reports_complexity() {
    let net = nsf_instance(5, 2);
    let ap = distributed_all_pairs(&net).expect("terminates");
    assert!(ap.total_messages() > 0);
    assert!(ap.pipelined_makespan > 0);
    assert!(ap.pipelined_makespan <= ap.sequential_makespan);
    // Measured messages within a small constant of the k²n² bound.
    assert!(ap.total_messages() <= 8 * ap.corollary2_bound(&net));
}
