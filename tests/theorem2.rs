//! E7 — Theorem 2 and the Fig. 5/6 node-revisit phenomenon.
//!
//! Without the restrictions, an optimal semilightpath may enter a node
//! twice on different wavelengths (the paper's Fig. 5). Under
//! Restrictions 1 + 2, Theorem 2 guarantees node-simplicity; the property
//! test checks the implication over random instances.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdm::core::instance::theorem2_instance;
use wdm::core::restrictions;
use wdm::prelude::*;
use wdm::{ConversionMatrix, Wavelength};

/// Builds the Fig. 5 gadget: the only s → t route enters node `w` twice.
///
/// Nodes: s = 0, w = 1, detour = 2, t = 3.
/// The direct conversion λ0 → λ3 at `w` is forbidden, so the path must
/// leave `w`, convert at the detour node, and come back.
fn revisit_gadget() -> WdmNetwork {
    let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 1), (1, 3)]);
    // Conversions at w (node 1): λ0→λ1 and λ2→λ3 only.
    let mut at_w = ConversionMatrix::forbidden(4);
    at_w.set(Wavelength::new(0), Wavelength::new(1), Cost::new(1));
    at_w.set(Wavelength::new(2), Wavelength::new(3), Cost::new(1));
    // Conversion at the detour node: λ1→λ2.
    let mut at_detour = ConversionMatrix::forbidden(4);
    at_detour.set(Wavelength::new(1), Wavelength::new(2), Cost::new(1));
    WdmNetwork::builder(g, 4)
        .link_wavelengths(0, [(0, 10)]) // s → w on λ0
        .link_wavelengths(1, [(1, 10)]) // w → detour on λ1
        .link_wavelengths(2, [(2, 10)]) // detour → w on λ2
        .link_wavelengths(3, [(3, 10)]) // w → t on λ3
        .conversion(1, ConversionPolicy::Matrix(at_w))
        .conversion(2, ConversionPolicy::Matrix(at_detour))
        .build()
        .expect("valid gadget")
}

#[test]
fn figure_5_optimal_path_revisits_a_node() {
    let net = revisit_gadget();
    // The gadget violates Restriction 1 at node w (λ0 ∈ Λ_in, λ3 ∈ Λ_out,
    // but λ0 → λ3 is forbidden).
    assert!(!restrictions::satisfies_restriction1(&net));
    assert!(!restrictions::theorem2_applies(&net));

    let path = find_optimal_semilightpath(&net, 0.into(), 3.into())
        .expect("in range")
        .expect("reachable via the revisit");
    path.validate(&net).expect("valid");
    // 4 links × 10 + 3 conversions × 1 = 43.
    assert_eq!(path.cost(), Cost::new(43));
    assert_eq!(path.len(), 4);
    assert!(!path.is_node_simple(&net), "the path enters w twice");
    assert_eq!(path.node_visit_counts(&net)[1], 2);
    // Fig. 6: four lightpath segments chained by three conversions.
    assert_eq!(path.conversion_count(), 3);
    assert_eq!(path.lightpath_segments().len(), 4);
}

#[test]
fn figure_5_distributed_agrees() {
    let net = revisit_gadget();
    let out = wdm::route_distributed(&net, 0.into(), 3.into()).expect("terminates");
    assert_eq!(out.cost, Cost::new(43));
    let p = out.path.expect("reachable");
    p.validate(&net).expect("valid");
    assert!(!p.is_node_simple(&net));
}

#[test]
fn restriction2_repairs_the_gadget_shape() {
    // Same topology but full cheap conversion everywhere: Theorem 2
    // applies and the optimal path is the 2-hop simple route s → w → t.
    let g = DiGraph::from_links(4, [(0, 1), (1, 2), (2, 1), (1, 3)]);
    let net = WdmNetwork::builder(g, 4)
        .link_wavelengths(0, [(0, 10)])
        .link_wavelengths(1, [(1, 10)])
        .link_wavelengths(2, [(2, 10)])
        .link_wavelengths(3, [(3, 10)])
        .uniform_conversion(ConversionPolicy::Uniform(Cost::new(1)))
        .build()
        .expect("valid");
    assert!(restrictions::theorem2_applies(&net));
    let path = find_optimal_semilightpath(&net, 0.into(), 3.into())
        .expect("in range")
        .expect("reachable");
    assert!(path.is_node_simple(&net));
    assert_eq!(path.cost(), Cost::new(21)); // 10 + 1 + 10
    assert_eq!(path.len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2: on restriction-satisfying instances every optimal
    /// semilightpath is node-simple.
    #[test]
    fn theorem2_holds_on_random_instances(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = wdm::graph::topology::random_sparse(12, 6, 4, &mut rng)
            .expect("feasible");
        let net = theorem2_instance(graph, 4, &mut rng).expect("valid");
        prop_assume!(restrictions::theorem2_applies(&net));
        let router = LiangShenRouter::new();
        for s in 0..net.node_count() {
            for t in 0..net.node_count() {
                if s == t { continue; }
                let r = router
                    .route(&net, NodeId::new(s), NodeId::new(t))
                    .expect("in range");
                if let Some(path) = r.path {
                    path.validate(&net).expect("valid");
                    prop_assert!(
                        path.is_node_simple(&net),
                        "Theorem 2 violated: seed {seed}, pair {s} → {t}, path {path}"
                    );
                }
            }
        }
    }
}
